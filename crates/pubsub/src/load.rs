//! Broker-side live load analyzer — the TCP tier's Local Load Analyzer
//! (§III-A of the paper).
//!
//! A [`BrokerLoadAnalyzer`] rides the broker's publish hot path and
//! accumulates per-channel counters (publications, deliveries, bytes
//! in/out) plus broker-wide totals, all as **cumulative relaxed
//! atomics** sharded exactly like the subscription index — the hot path
//! pays a shard read-lock lookup plus four relaxed `fetch_add`s, and a
//! shard write lock only on the first publication a channel ever sees.
//!
//! Harvesting ([`BrokerLoadAnalyzer::harvest`], surfaced as
//! [`TcpBroker::load_report`](crate::TcpBroker::load_report)) converts
//! the cumulative counters into per-interval deltas against a snapshot
//! of the previous harvest. Because every counter is monotone and each
//! harvest telescopes against the last, **every increment is counted in
//! exactly one report** — concurrent publishes during a harvest land
//! either in this report or the next, never in both and never nowhere.
//! Subscriber counts are a gauge read from the subscription index at
//! harvest time, so channels with subscribers but no traffic still
//! appear (exactly once) and the balancer sees them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::balance::metrics::ChannelTick;
use crate::shard::fnv64;

/// Cumulative per-channel counters, bumped with relaxed ordering on the
/// publish hot path.
#[derive(Default)]
struct ChannelCounters {
    publications: AtomicU64,
    deliveries: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl ChannelCounters {
    fn read(&self) -> Totals {
        Totals {
            publications: self.publications.load(Ordering::Relaxed),
            deliveries: self.deliveries.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time reading of one channel's cumulative counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Totals {
    publications: u64,
    deliveries: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl Totals {
    fn delta_since(&self, last: &Totals) -> ChannelTick {
        ChannelTick {
            publications: self.publications - last.publications,
            deliveries: self.deliveries - last.deliveries,
            bytes_in: self.bytes_in - last.bytes_in,
            bytes_out: self.bytes_out - last.bytes_out,
            // Distinct-publisher counting would need a per-channel set
            // on the hot path; the live balancing algorithms read
            // publications and subscribers, not publishers.
            publishers: 0,
            subscribers: 0,
        }
    }
}

/// Harvest bookkeeping: the previous harvest's snapshot of every
/// cumulative counter, so reports carry exact per-interval deltas.
#[derive(Default)]
struct HarvestState {
    tick: u64,
    last: HashMap<String, Totals>,
    last_egress: u64,
    last_ingress: u64,
    last_sent: u64,
}

/// One harvest interval of broker load, as produced by
/// [`TcpBroker::load_report`](crate::TcpBroker::load_report). All
/// counter fields are **deltas** since the previous report; the
/// per-channel `subscribers` field is a current gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokerLoadReport {
    /// Monotone report number (0-based).
    pub tick: u64,
    /// Bytes of encoded push frames handed to subscriber outboxes this
    /// interval — the `M_i` numerator of the load ratio.
    pub egress_bytes: u64,
    /// Bytes of publication payloads (plus channel names) received.
    pub ingress_bytes: u64,
    /// Push frames handed to subscriber outboxes.
    pub sent_messages: u64,
    /// Per-channel deltas, sorted by channel name. Every channel with
    /// traffic this interval or with a current subscriber appears
    /// exactly once.
    pub channels: Vec<(String, ChannelTick)>,
}

/// The broker's live load analyzer (see module docs).
pub struct BrokerLoadAnalyzer {
    shards: Vec<RwLock<HashMap<String, Arc<ChannelCounters>>>>,
    egress_bytes: AtomicU64,
    ingress_bytes: AtomicU64,
    sent_messages: AtomicU64,
    harvest: Mutex<HarvestState>,
}

impl BrokerLoadAnalyzer {
    /// Creates an analyzer with `shards` counter shards (rounded up to a
    /// power of two, minimum 1) — mirror the broker's index sharding.
    pub fn new(shards: usize) -> BrokerLoadAnalyzer {
        let n = shards.max(1).next_power_of_two();
        BrokerLoadAnalyzer {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            egress_bytes: AtomicU64::new(0),
            ingress_bytes: AtomicU64::new(0),
            sent_messages: AtomicU64::new(0),
            harvest: Mutex::new(HarvestState::default()),
        }
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Arc<ChannelCounters>>> {
        &self.shards[(fnv64(name) as usize) & (self.shards.len() - 1)]
    }

    /// Hot-path hook: records one publication on `name` that carried
    /// `ingress_bytes` in, fanned out `egress_bytes` of encoded frames,
    /// and was handed to `delivered` subscriber outboxes.
    pub fn note_publish(&self, name: &str, ingress_bytes: u64, egress_bytes: u64, delivered: u64) {
        self.ingress_bytes
            .fetch_add(ingress_bytes, Ordering::Relaxed);
        if egress_bytes > 0 {
            self.egress_bytes.fetch_add(egress_bytes, Ordering::Relaxed);
        }
        if delivered > 0 {
            self.sent_messages.fetch_add(delivered, Ordering::Relaxed);
        }
        let counters = {
            let shard = self.shard(name);
            // Bind the fast-path lookup to a statement so the read guard
            // drops before the slow path takes the write lock.
            let hit = shard.read().get(name).map(Arc::clone);
            match hit {
                Some(c) => c,
                None => {
                    let mut shard = shard.write();
                    Arc::clone(shard.entry(name.to_owned()).or_default())
                }
            }
        };
        counters.publications.fetch_add(1, Ordering::Relaxed);
        counters.deliveries.fetch_add(delivered, Ordering::Relaxed);
        counters
            .bytes_in
            .fetch_add(ingress_bytes, Ordering::Relaxed);
        counters
            .bytes_out
            .fetch_add(egress_bytes, Ordering::Relaxed);
    }

    /// Closes one interval: reads every cumulative counter, diffs it
    /// against the previous harvest, merges in the current subscriber
    /// gauge, and prunes channels that are dead (no traffic since the
    /// last harvest, no subscribers, and no publish in flight).
    pub fn harvest(&self, subscribers: Vec<(String, u32)>) -> BrokerLoadReport {
        let mut state = self.harvest.lock();
        let mut channels: HashMap<String, ChannelTick> = HashMap::new();

        for shard in &self.shards {
            // Read pass under the shared lock: collect deltas.
            let mut prunable: Vec<String> = Vec::new();
            {
                let guard = shard.read();
                for (name, counters) in guard.iter() {
                    let now = counters.read();
                    let last = state.last.get(name).copied().unwrap_or_default();
                    let tick = now.delta_since(&last);
                    if tick.is_zero_delta() {
                        prunable.push(name.clone());
                    } else {
                        channels.insert(name.clone(), tick);
                    }
                    state.last.insert(name.clone(), now);
                }
            }
            if prunable.is_empty() {
                continue;
            }
            // Prune pass under the write lock: a channel is removed only
            // when the map holds the sole reference to its counters (no
            // publish holds a clone) and nothing was counted since the
            // read pass — so removal can never lose an increment.
            let mut guard = shard.write();
            for name in prunable {
                let safe = guard.get(&name).is_some_and(|c| {
                    Arc::strong_count(c) == 1
                        && state.last.get(&name).copied().unwrap_or_default() == c.read()
                });
                if safe {
                    guard.remove(&name);
                    state.last.remove(&name);
                }
            }
        }

        // Merge the subscriber gauge: idle subscriber-bearing channels
        // enter the report here (exactly once — the map is keyed by
        // name), active ones get their gauge filled in.
        for (name, subs) in subscribers {
            channels.entry(name).or_default().subscribers = subs;
        }
        // Keep any entry with a nonzero field: under relaxed loads a
        // harvest can catch a publish mid-increment and see e.g. only
        // its bytes_out — that skewed delta still advanced the snapshot,
        // so dropping it here would lose the bytes from the telescoped
        // sums forever.
        channels.retain(|_, t| {
            t.subscribers > 0
                || t.publications > 0
                || t.deliveries > 0
                || t.bytes_in > 0
                || t.bytes_out > 0
        });

        let egress = self.egress_bytes.load(Ordering::Relaxed);
        let ingress = self.ingress_bytes.load(Ordering::Relaxed);
        let sent = self.sent_messages.load(Ordering::Relaxed);
        let tick = state.tick;
        state.tick += 1;
        let report = BrokerLoadReport {
            tick,
            egress_bytes: egress - state.last_egress,
            ingress_bytes: ingress - state.last_ingress,
            sent_messages: sent - state.last_sent,
            channels: {
                let mut v: Vec<(String, ChannelTick)> = channels.into_iter().collect();
                v.sort_by(|a, b| a.0.cmp(&b.0));
                v
            },
        };
        state.last_egress = egress;
        state.last_ingress = ingress;
        state.last_sent = sent;
        report
    }
}

impl ChannelTick {
    fn is_zero_delta(&self) -> bool {
        self.publications == 0 && self.deliveries == 0 && self.bytes_in == 0 && self.bytes_out == 0
    }
}

impl std::fmt::Debug for BrokerLoadAnalyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerLoadAnalyzer")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_telescope_across_harvests() {
        let lla = BrokerLoadAnalyzer::new(4);
        lla.note_publish("alpha", 10, 300, 3);
        lla.note_publish("alpha", 10, 300, 3);
        let r1 = lla.harvest(vec![("alpha".into(), 3)]);
        assert_eq!(r1.tick, 0);
        assert_eq!(r1.egress_bytes, 600);
        assert_eq!(r1.ingress_bytes, 20);
        assert_eq!(r1.sent_messages, 6);
        let (name, t) = &r1.channels[0];
        assert_eq!(name, "alpha");
        assert_eq!(t.publications, 2);
        assert_eq!(t.deliveries, 6);
        assert_eq!(t.bytes_out, 600);
        assert_eq!(t.subscribers, 3);

        lla.note_publish("alpha", 10, 100, 1);
        let r2 = lla.harvest(vec![("alpha".into(), 1)]);
        assert_eq!(r2.tick, 1);
        assert_eq!(r2.egress_bytes, 100);
        assert_eq!(r2.channels[0].1.publications, 1);
    }

    #[test]
    fn idle_subscriber_channels_reported_exactly_once() {
        let lla = BrokerLoadAnalyzer::new(4);
        let r = lla.harvest(vec![("quiet".into(), 2)]);
        let quiet: Vec<_> = r.channels.iter().filter(|(n, _)| n == "quiet").collect();
        assert_eq!(quiet.len(), 1);
        assert_eq!(quiet[0].1.subscribers, 2);
        assert_eq!(quiet[0].1.publications, 0);
    }

    /// Satellite of the live control plane: under broker_stress-style
    /// churn — writer threads hammering overlapping channels while a
    /// harvester snapshots mid-flight — the telescoped reports must sum
    /// to exactly what was published (no tearing, no double counting,
    /// no lost increments), even though harvests race the writes.
    #[test]
    fn counters_are_exact_under_concurrent_churn() {
        use std::collections::HashMap;

        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 20_000;
        const CHANNELS: usize = 13; // not a power of two: shards collide

        let lla = Arc::new(BrokerLoadAnalyzer::new(4));
        let mut workers = Vec::new();
        for w in 0..WRITERS {
            let lla = Arc::clone(&lla);
            workers.push(std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let name = format!("ch-{}", (w as u64 + i) % CHANNELS as u64);
                    lla.note_publish(&name, 7, 64, 2);
                }
            }));
        }
        // Harvest concurrently with the writers, accumulating the
        // deltas; whatever the interleaving, the telescoped sum plus a
        // final quiescent harvest must equal the ground truth.
        let mut sums: HashMap<String, ChannelTick> = HashMap::new();
        let mut total_egress = 0u64;
        let mut total_ingress = 0u64;
        let mut total_sent = 0u64;
        let absorb = |report: BrokerLoadReport,
                      sums: &mut HashMap<String, ChannelTick>,
                      eg: &mut u64,
                      ing: &mut u64,
                      sent: &mut u64| {
            *eg += report.egress_bytes;
            *ing += report.ingress_bytes;
            *sent += report.sent_messages;
            for (name, tick) in report.channels {
                let s = sums.entry(name).or_default();
                s.publications += tick.publications;
                s.deliveries += tick.deliveries;
                s.bytes_in += tick.bytes_in;
                s.bytes_out += tick.bytes_out;
            }
        };
        while workers.iter().any(|w| !w.is_finished()) {
            absorb(
                lla.harvest(Vec::new()),
                &mut sums,
                &mut total_egress,
                &mut total_ingress,
                &mut total_sent,
            );
        }
        for w in workers {
            w.join().unwrap();
        }
        absorb(
            lla.harvest(Vec::new()),
            &mut sums,
            &mut total_egress,
            &mut total_ingress,
            &mut total_sent,
        );

        let published = WRITERS as u64 * PER_WRITER;
        assert_eq!(total_ingress, published * 7);
        assert_eq!(total_egress, published * 64);
        assert_eq!(total_sent, published * 2);
        let counted: u64 = sums.values().map(|t| t.publications).sum();
        assert_eq!(counted, published, "a publication was lost or doubled");
        for (name, t) in &sums {
            assert_eq!(t.deliveries, t.publications * 2, "torn deltas on {name}");
            assert_eq!(t.bytes_in, t.publications * 7, "torn deltas on {name}");
            assert_eq!(t.bytes_out, t.publications * 64, "torn deltas on {name}");
        }
        assert_eq!(sums.len(), CHANNELS);
    }

    #[test]
    fn dead_channels_are_pruned_and_resurrect_cleanly() {
        let lla = BrokerLoadAnalyzer::new(1);
        lla.note_publish("ephemeral", 5, 0, 0);
        let r1 = lla.harvest(Vec::new());
        assert_eq!(r1.channels.len(), 1);
        // Second harvest with no traffic and no subscribers prunes it.
        let r2 = lla.harvest(Vec::new());
        assert!(r2.channels.is_empty());
        assert!(lla.shards[0].read().is_empty());
        // A later publication starts counting from zero again.
        lla.note_publish("ephemeral", 5, 0, 0);
        let r3 = lla.harvest(Vec::new());
        assert_eq!(r3.channels[0].1.publications, 1);
    }
}
