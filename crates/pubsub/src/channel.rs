//! Channel (topic) identifiers and name interning.
//!
//! Applications address channels by name (`"tile_3_4"`, `"player_42"`),
//! but the simulation moves millions of messages, so channels are
//! interned to a compact [`Channel`] id once and referenced by id
//! everywhere else. [`ChannelRegistry`] provides the bidirectional
//! mapping.

use std::collections::HashMap;
use std::fmt;

/// A compact channel (topic) identifier.
///
/// # Examples
///
/// ```
/// use dynamoth_pubsub::{Channel, ChannelRegistry};
///
/// let mut reg = ChannelRegistry::new();
/// let c = reg.intern("tile_3_4");
/// assert_eq!(reg.intern("tile_3_4"), c); // stable
/// assert_eq!(reg.name(c), Some("tile_3_4"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel(pub u64);

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Bidirectional mapping between channel names and [`Channel`] ids.
#[derive(Debug, Default, Clone)]
pub struct ChannelRegistry {
    by_name: HashMap<String, Channel>,
    names: Vec<String>,
}

impl ChannelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, allocating one on first use.
    pub fn intern(&mut self, name: &str) -> Channel {
        if let Some(&c) = self.by_name.get(name) {
            return c;
        }
        let c = Channel(self.names.len() as u64);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), c);
        c
    }

    /// Looks up an id without allocating.
    pub fn get(&self, name: &str) -> Option<Channel> {
        self.by_name.get(name).copied()
    }

    /// The name a channel was interned under, if it came from this
    /// registry.
    pub fn name(&self, channel: Channel) -> Option<&str> {
        self.names.get(channel.0 as usize).map(String::as_str)
    }

    /// Number of interned channels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no channel has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut reg = ChannelRegistry::new();
        let a = reg.intern("alpha");
        let b = reg.intern("beta");
        assert_ne!(a, b);
        assert_eq!(reg.intern("alpha"), a);
        assert_eq!(reg.len(), 2);
        assert_eq!(a, Channel(0));
        assert_eq!(b, Channel(1));
    }

    #[test]
    fn lookup_without_allocation() {
        let mut reg = ChannelRegistry::new();
        assert_eq!(reg.get("x"), None);
        let x = reg.intern("x");
        assert_eq!(reg.get("x"), Some(x));
    }

    #[test]
    fn names_round_trip() {
        let mut reg = ChannelRegistry::new();
        let c = reg.intern("tile_0_0");
        assert_eq!(reg.name(c), Some("tile_0_0"));
        assert_eq!(reg.name(Channel(99)), None);
    }

    #[test]
    fn empty_registry() {
        let reg = ChannelRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.len(), 0);
    }
}
