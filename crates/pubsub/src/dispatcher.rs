//! Per-broker dispatcher sidecar: the reconfiguration half of the
//! routed TCP tier (§IV of the paper).
//!
//! Dynamoth keeps its pub/sub servers unmodified; the *dispatcher*
//! process colocated with each server implements lazy reconfiguration.
//! [`DispatcherSidecar`] is that process for the TCP tier. When the
//! load balancer migrates a channel, it installs the corresponding
//! [`ChannelChange`] on the sidecars of every involved broker; each
//! sidecar then subscribes to the migrated channel **on its own broker**
//! and, for every publication it observes during the reconfiguration
//! window:
//!
//! - the **old-home** sidecar emits a [`ControlFrame::Switch`] on the
//!   channel (so still-connected local subscribers re-point), emits a
//!   [`ControlFrame::Moved`] on the stale publisher's control channel
//!   (so its local plan catches up), and forwards the publication —
//!   byte-identical, original wire id preserved — to the channel's new
//!   home(s);
//! - the **new-home** sidecar forwards publications back to old members
//!   still holding unswitched subscribers.
//!
//! Forwarding both ways means neither a stale publisher nor a stale
//! subscriber loses messages, and preserved wire ids mean the
//! receive-side dedup windows (client and router level) make delivery
//! exactly-once despite the duplication forwarding creates. Publications
//! without a wire id are never forwarded — with no id to suppress on, a
//! bounced copy would ping-pong between brokers forever — and are
//! counted in [`SidecarStats::unforwardable`].
//!
//! All per-channel state carries a TTL; once it lapses (the paper keeps
//! forwarding "for a certain amount of time"), the sidecar unsubscribes
//! its watch and drops the forwarding rule.
//!
//! The watch rides a resume-enabled [`TcpPubSubClient`], so a watch
//! connection that drops mid-window resumes from its per-channel
//! high-water sequence on reconnect: publications the sidecar missed
//! while disconnected are replayed from the broker's retention ring and
//! forwarded late rather than never. And because a sidecar's `Switch`
//! emissions are themselves publications on the migrated channel, they
//! sit in that channel's retention ring — a subscriber that reconnects
//! to the *old* home after the forwarding TTL lapsed still replays the
//! `<switch>` and learns the new home.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::client::{frame_payload, ClientConfig, ClientEvent, Dedup, TcpPubSubClient};
use crate::control::{control_channel, install_channel, ControlFrame, InstallFrame, Quarantine};
use crate::ids::{PlanId, ServerId};
use crate::plan::ChannelMapping;

/// Tuning knobs of a [`DispatcherSidecar`].
#[derive(Debug, Clone)]
pub struct SidecarConfig {
    /// How long forwarding/switch state lives after installation.
    pub ttl: Duration,
    /// Dedup window (wire ids) for forwarding-loop suppression.
    pub dedup_window: usize,
    /// Pump thread granularity.
    pub tick: Duration,
    /// Tuning for the underlying broker connections.
    pub client: ClientConfig,
}

impl Default for SidecarConfig {
    fn default() -> Self {
        SidecarConfig {
            ttl: Duration::from_secs(10),
            dedup_window: 4096,
            tick: Duration::from_millis(5),
            client: ClientConfig::default(),
        }
    }
}

/// One channel migration, as installed on a sidecar: the channel's name
/// plus its mapping before and after the plan change.
#[derive(Debug, Clone)]
pub struct ChannelChange {
    /// Full channel name (what clients publish/subscribe with).
    pub channel: String,
    /// Mapping under the old plan.
    pub old: ChannelMapping,
    /// Mapping under the new plan.
    pub new: ChannelMapping,
}

/// Counters of a sidecar's reconfiguration activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SidecarStats {
    /// Publications forwarded to another broker.
    pub forwarded: u64,
    /// `<switch>` frames emitted to local subscribers.
    pub switches_emitted: u64,
    /// `MOVED` frames emitted to stale publishers.
    pub moved_emitted: u64,
    /// Observed publications suppressed as forwarding-loop duplicates.
    pub duplicates_suppressed: u64,
    /// Observed publications without a wire id (not forwarded).
    pub unforwardable: u64,
    /// Channel states torn down after their TTL lapsed.
    pub expired: u64,
    /// Channel states currently installed.
    pub active_channels: usize,
}

/// Out-of-band notifications from a sidecar's pump thread, drained with
/// [`DispatcherSidecar::try_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SidecarEvent {
    /// A broker connection exhausted its reconnect budget
    /// ([`ClientConfig::max_reconnect_attempts`]) and was abandoned.
    /// The sidecar keeps running — the connection is re-established
    /// lazily on next use — but the operator should know the peer was
    /// unreachable for a whole backoff cycle.
    PeerUnavailable {
        /// Directory index of the unreachable broker.
        broker: usize,
    },
}

struct ChannelState {
    old: ChannelMapping,
    new: ChannelMapping,
    plan: PlanId,
    expires_at: Instant,
    /// Brokers the balancer declared dead when it computed this state.
    /// Non-empty marks a failover install: every surviving sidecar
    /// participates (see [`Pump::apply_installs`]) and forwarding never
    /// targets a quarantined broker.
    quarantine: Vec<Quarantine>,
}

/// One queued install: the public [`DispatcherSidecar::install`] path
/// queues an empty quarantine; `DMINST1` frames carry the balancer's.
struct Install {
    change: ChannelChange,
    plan: PlanId,
    quarantine: Vec<Quarantine>,
}

struct SidecarShared {
    running: AtomicBool,
    installs: Mutex<Vec<Install>>,
    stats: Mutex<SidecarStats>,
    active: Mutex<usize>,
}

/// The dispatcher sidecar of one broker (see module docs).
pub struct DispatcherSidecar {
    shared: Arc<SidecarShared>,
    pump: Option<JoinHandle<()>>,
    events: Mutex<mpsc::Receiver<SidecarEvent>>,
}

impl DispatcherSidecar {
    /// Starts the sidecar of broker `me`. `directory[i]` is the address
    /// of the broker with index `i`; `directory[me.index()]` is this
    /// sidecar's own broker, which it watches and emits control frames
    /// through.
    pub fn start(
        me: ServerId,
        directory: Vec<SocketAddr>,
        cfg: SidecarConfig,
    ) -> DispatcherSidecar {
        let shared = Arc::new(SidecarShared {
            running: AtomicBool::new(true),
            installs: Mutex::new(Vec::new()),
            stats: Mutex::new(SidecarStats::default()),
            active: Mutex::new(0),
        });
        let pump_shared = Arc::clone(&shared);
        let (event_tx, event_rx) = mpsc::channel();
        let pump = std::thread::spawn(move || {
            Pump {
                me,
                directory,
                cfg,
                shared: pump_shared,
                watch: None,
                peers: HashMap::new(),
                channels: HashMap::new(),
                dedup: Dedup::new(),
                events: event_tx,
            }
            .run()
        });
        DispatcherSidecar {
            shared,
            pump: Some(pump),
            events: Mutex::new(event_rx),
        }
    }

    /// Installs reconfiguration state for one migrated channel under
    /// plan version `plan`. Idempotent per (channel, plan): re-installing
    /// refreshes the TTL.
    pub fn install(&self, change: ChannelChange, plan: PlanId) {
        self.shared.installs.lock().push(Install {
            change,
            plan,
            quarantine: Vec::new(),
        });
    }

    /// The next queued [`SidecarEvent`], if any.
    pub fn try_event(&self) -> Option<SidecarEvent> {
        self.events.lock().try_recv().ok()
    }

    /// Counters so far (`active_channels` is current, the rest are
    /// cumulative).
    pub fn stats(&self) -> SidecarStats {
        let mut stats = self.shared.stats.lock().clone();
        stats.active_channels = *self.shared.active.lock();
        stats
    }

    /// Stops the pump thread and closes every broker connection.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        if let Some(handle) = self.pump.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for DispatcherSidecar {
    fn drop(&mut self) {
        if self.pump.is_some() {
            self.stop();
        }
    }
}

impl std::fmt::Debug for DispatcherSidecar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DispatcherSidecar").finish_non_exhaustive()
    }
}

/// The sidecar's worker: owns the watch connection to its own broker,
/// lazy forwarding connections to peers, the per-channel state table and
/// the loop-suppression window.
struct Pump {
    me: ServerId,
    directory: Vec<SocketAddr>,
    cfg: SidecarConfig,
    shared: Arc<SidecarShared>,
    watch: Option<TcpPubSubClient>,
    peers: HashMap<usize, TcpPubSubClient>,
    channels: HashMap<String, ChannelState>,
    dedup: Dedup,
    events: mpsc::Sender<SidecarEvent>,
}

impl Pump {
    fn run(mut self) {
        // Watch eagerly: the install channel must be listening before
        // the balancer's first plan delta, not after the first local
        // `install()` call.
        while self.shared.running.load(Ordering::SeqCst) {
            // No-op while the watch is healthy; after a `GaveUp` this
            // rebuilds the connection (and its subscriptions) so an
            // outage longer than the retry budget still heals.
            self.watch();
            self.apply_installs();
            self.drain_watch();
            self.expire();
            std::thread::sleep(self.cfg.tick);
        }
    }

    /// The watch connection, rebuilt in place when a `GaveUp` tore it
    /// down. Structurally infallible: the client value is constructed
    /// inside `get_or_insert_with`, so there is no window in which the
    /// pump can observe a missing watch and panic (the connection
    /// itself is established asynchronously by the client's worker; an
    /// unreachable broker surfaces as [`SidecarEvent::PeerUnavailable`]
    /// from the event drain, never as a crash).
    fn watch(&mut self) -> &TcpPubSubClient {
        let addr = self.directory[self.me.index()];
        let cfg = self.cfg.client.clone();
        let me = self.me.index();
        let channels = &self.channels;
        self.watch.get_or_insert_with(|| {
            let client = TcpPubSubClient::connect_addr(addr, cfg);
            // (Re-)establish the control-plane subscriptions: the
            // balancer's install channel plus any channel state that
            // survived a dropped watch connection.
            client.subscribe(&install_channel(me));
            for channel in channels.keys() {
                client.subscribe(channel);
            }
            client
        })
    }

    fn peer(&mut self, server: ServerId) -> &TcpPubSubClient {
        let idx = server.index();
        if !self.peers.contains_key(&idx) {
            let client =
                TcpPubSubClient::connect_addr(self.directory[idx], self.cfg.client.clone());
            self.peers.insert(idx, client);
        }
        &self.peers[&idx]
    }

    fn apply_installs(&mut self) {
        let installs: Vec<Install> = std::mem::take(&mut *self.shared.installs.lock());
        for install in installs {
            let Install {
                change,
                plan,
                quarantine,
            } = install;
            // A failover install (non-empty quarantine) involves every
            // surviving sidecar: routers guessing the new home by ring
            // exclusion may land publications on *any* survivor, which
            // must then know where to forward and correct them.
            let involved = change.old.contains(self.me) || change.new.contains(self.me);
            let failover = !quarantine.is_empty();
            if !involved && !failover {
                continue;
            }
            let stale = self
                .channels
                .get(&change.channel)
                .is_some_and(|existing| existing.plan > plan);
            if stale {
                continue;
            }
            if !self.channels.contains_key(&change.channel) {
                self.watch().subscribe(&change.channel);
            }
            self.channels.insert(
                change.channel,
                ChannelState {
                    old: change.old,
                    new: change.new,
                    plan,
                    expires_at: Instant::now() + self.cfg.ttl,
                    quarantine,
                },
            );
            *self.shared.active.lock() = self.channels.len();
        }
    }

    fn drain_watch(&mut self) {
        let Some(watch) = self.watch.as_ref() else {
            return;
        };
        let mut messages = Vec::new();
        while let Some(msg) = watch.try_message() {
            messages.push(msg);
        }
        // Drain the watch connection's event queue; a worker that gave
        // up reconnecting leaves a dead client behind, so drop it (the
        // next use rebuilds it — with its subscriptions — from scratch)
        // and surface the outage instead of silently wedging.
        let mut watch_gave_up = false;
        while let Some(event) = watch.try_event() {
            if matches!(event, ClientEvent::GaveUp) {
                watch_gave_up = true;
            }
        }
        if watch_gave_up {
            self.watch = None;
            let _ = self.events.send(SidecarEvent::PeerUnavailable {
                broker: self.me.index(),
            });
        }
        // Same for forwarding peers: prune dead clients so the next
        // forward reconnects instead of publishing into a void.
        let mut dead_peers = Vec::new();
        for (&idx, peer) in &self.peers {
            while let Some(event) = peer.try_event() {
                if matches!(event, ClientEvent::GaveUp) {
                    dead_peers.push(idx);
                }
            }
        }
        for idx in dead_peers {
            if let Some(peer) = self.peers.remove(&idx) {
                // The dead worker deposited its queued-but-unconfirmed
                // forwards before exiting; rescue them onto a fresh
                // client (with a fresh reconnect budget) so an in-flight
                // migration window does not silently drop frames when
                // the peer connection dies mid-forward. Wire ids are
                // preserved, so a frame that *did* land before the
                // connection died is absorbed by downstream dedup.
                let stranded = peer.take_unsent(Duration::from_millis(500));
                drop(peer);
                for (channel, framed) in stranded {
                    self.peer(ServerId::from_index(idx))
                        .publish_raw(&channel, &framed);
                }
            }
            let _ = self
                .events
                .send(SidecarEvent::PeerUnavailable { broker: idx });
        }
        for msg in messages {
            self.handle(msg);
        }
    }

    fn handle(&mut self, msg: crate::client::Message) {
        // Plan deltas from the live balancer arrive on our private
        // install channel; they feed the same install path a local
        // `install()` call does (idempotent per (channel, plan), TTL
        // refresh on re-send).
        if msg.channel == install_channel(self.me.index()) {
            if let Some(frame) = InstallFrame::decode(&msg.payload) {
                self.shared.installs.lock().push(Install {
                    change: ChannelChange {
                        channel: frame.channel,
                        old: frame.old,
                        new: frame.new,
                    },
                    plan: frame.plan,
                    quarantine: frame.quarantine,
                });
            }
            return;
        }
        // Our own Switch emissions (and any other sidecar's control
        // frames) come back through the watch subscription; they carry
        // routing metadata, not application traffic — never forward.
        if ControlFrame::decode(&msg.payload).is_some() {
            return;
        }
        let Some(state) = self.channels.get(&msg.channel) else {
            return; // teardown raced a late delivery
        };
        let i_am_old = state.old.contains(self.me);
        let involved = i_am_old || state.new.contains(self.me);
        let new = state.new.clone();
        let old = state.old.clone();
        let plan = state.plan;
        let quarantine = state.quarantine.clone();
        let dead: Vec<ServerId> = quarantine
            .iter()
            .map(|q| ServerId::from_index(q.broker))
            .collect();
        // During a failover window an uninvolved survivor acts like an
        // old home: publications landing here are a router's
        // ring-exclusion guess at the corpse's replacement, and this
        // sidecar must re-point the guesser and forward the frame to
        // the real new home.
        let act_as_old = i_am_old || (!involved && !quarantine.is_empty());

        let Some(id) = msg.id else {
            self.shared.stats.lock().unforwardable += 1;
            // Still tell local subscribers where the channel went.
            if act_as_old {
                self.emit_switch(&msg.channel, &new, plan, &quarantine);
            }
            return;
        };
        if !self.dedup.insert(id, self.cfg.dedup_window) {
            self.shared.stats.lock().duplicates_suppressed += 1;
            return;
        }
        // Re-frame byte-identically: framing is deterministic, so the
        // forwarded copy carries the original wire id and every dedup
        // window downstream recognizes it.
        let framed = frame_payload(id, &msg.payload);

        if act_as_old {
            self.emit_switch(&msg.channel, &new, plan, &quarantine);
            self.emit_moved(id.origin, &msg.channel, &new, plan, &quarantine);
            for target in forward_targets_old_to_new(self.me, &new) {
                if dead.contains(&target) {
                    continue; // never forward into the corpse
                }
                self.peer(target).publish_raw(&msg.channel, &framed);
                self.shared.stats.lock().forwarded += 1;
            }
        } else {
            // New home: cover unswitched subscribers still sitting on
            // old members that left the mapping.
            for target in forward_targets_new_to_old(self.me, &old, &new) {
                if dead.contains(&target) {
                    continue; // never forward into the corpse
                }
                self.peer(target).publish_raw(&msg.channel, &framed);
                self.shared.stats.lock().forwarded += 1;
            }
        }
    }

    fn emit_switch(
        &mut self,
        channel: &str,
        new: &ChannelMapping,
        plan: PlanId,
        quarantine: &[Quarantine],
    ) {
        let frame = ControlFrame::Switch {
            channel: channel.to_owned(),
            mapping: new.clone(),
            plan,
            quarantine: quarantine.to_vec(),
        };
        self.watch().publish(channel, &frame.encode());
        self.shared.stats.lock().switches_emitted += 1;
    }

    fn emit_moved(
        &mut self,
        origin: u64,
        channel: &str,
        new: &ChannelMapping,
        plan: PlanId,
        quarantine: &[Quarantine],
    ) {
        let frame = ControlFrame::Moved {
            channel: channel.to_owned(),
            mapping: new.clone(),
            plan,
            quarantine: quarantine.to_vec(),
        };
        self.watch()
            .publish(&control_channel(origin), &frame.encode());
        self.shared.stats.lock().moved_emitted += 1;
    }

    fn expire(&mut self) {
        let now = Instant::now();
        let lapsed: Vec<String> = self
            .channels
            .iter()
            .filter(|(_, s)| s.expires_at <= now)
            .map(|(c, _)| c.clone())
            .collect();
        if lapsed.is_empty() {
            return;
        }
        for channel in &lapsed {
            self.channels.remove(channel);
            if let Some(watch) = self.watch.as_ref() {
                watch.unsubscribe(channel);
            }
        }
        let mut stats = self.shared.stats.lock();
        stats.expired += lapsed.len() as u64;
        *self.shared.active.lock() = self.channels.len();
    }
}

/// Where the old home forwards a stale publication so it reaches the
/// channel's new servers. Mirrors publisher semantics per mapping mode:
/// one member suffices under `Single`/`AllSubscribers` (subscribers
/// cover every member), all members are needed under `AllPublishers`.
fn forward_targets_old_to_new(me: ServerId, new: &ChannelMapping) -> Vec<ServerId> {
    match new {
        ChannelMapping::Single(s) => {
            if *s == me {
                Vec::new()
            } else {
                vec![*s]
            }
        }
        ChannelMapping::AllSubscribers(v) => {
            if v.contains(&me) {
                Vec::new() // local delivery already reaches every subscriber
            } else {
                // A corrupt empty member list forwards nowhere instead
                // of panicking the pump.
                v.first().map(|s| vec![*s]).unwrap_or_default()
            }
        }
        ChannelMapping::AllPublishers(v) => v.iter().copied().filter(|&s| s != me).collect(),
    }
}

/// Where a new home forwards a publication so subscribers still parked
/// on departed old members keep receiving during the window.
fn forward_targets_new_to_old(
    me: ServerId,
    old: &ChannelMapping,
    new: &ChannelMapping,
) -> Vec<ServerId> {
    old.servers()
        .iter()
        .copied()
        .filter(|&s| s != me && !new.contains(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> ServerId {
        ServerId::from_index(i)
    }

    #[test]
    fn old_to_new_targets_per_mode() {
        // Single: forward to the new home, never to self.
        assert_eq!(
            forward_targets_old_to_new(s(0), &ChannelMapping::Single(s(2))),
            vec![s(2)]
        );
        assert_eq!(
            forward_targets_old_to_new(s(2), &ChannelMapping::Single(s(2))),
            Vec::<ServerId>::new()
        );
        // AllSubscribers: one member suffices; none if we are a member.
        assert_eq!(
            forward_targets_old_to_new(s(0), &ChannelMapping::AllSubscribers(vec![s(1), s(2)])),
            vec![s(1)]
        );
        assert_eq!(
            forward_targets_old_to_new(s(1), &ChannelMapping::AllSubscribers(vec![s(1), s(2)])),
            Vec::<ServerId>::new()
        );
        // AllPublishers: every member except self.
        assert_eq!(
            forward_targets_old_to_new(s(1), &ChannelMapping::AllPublishers(vec![s(1), s(2)])),
            vec![s(2)]
        );
    }

    #[test]
    fn new_to_old_targets_cover_departed_members_only() {
        let old = ChannelMapping::AllSubscribers(vec![s(0), s(1)]);
        let new = ChannelMapping::AllSubscribers(vec![s(1), s(2)]);
        // From s2's perspective: s0 left the mapping and may still hold
        // unswitched subscribers; s1 stayed and needs nothing.
        assert_eq!(forward_targets_new_to_old(s(2), &old, &new), vec![s(0)]);
        // Plain Single → Single migration.
        assert_eq!(
            forward_targets_new_to_old(
                s(2),
                &ChannelMapping::Single(s(0)),
                &ChannelMapping::Single(s(2))
            ),
            vec![s(0)]
        );
    }
}
