//! A hashed timer wheel for the broker's event loops.
//!
//! Each reactor loop owns one [`TimerWheel`] and uses it for
//! time-based work that must not cost a thread or a sorted structure:
//! per-connection liveness deadlines (half-open detection) and
//! periodic idle ticks. The wheel trades resolution for O(1)
//! scheduling: time is quantised into fixed-width ticks, each tick
//! hashes to one of `slots` buckets, and expiry walks only the buckets
//! the clock has passed. An entry scheduled more than one wheel
//! revolution out simply stays in its bucket until the cursor comes
//! round to its actual tick — the classic "hashed wheel" scheme
//! (Varghese & Lauck), also used by Netty and Kafka.
//!
//! Cancellation is deliberately lazy: there is no `cancel`. Callers
//! revalidate on expiry (e.g. "has this connection received bytes
//! since?") and reschedule when the deadline moved. That keeps the hot
//! paths (socket reads) free of any wheel bookkeeping.

use std::time::{Duration, Instant};

/// One scheduled entry: an opaque token due at an absolute tick.
#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    tick: u64,
}

/// A hashed timer wheel over opaque `u64` tokens.
pub(crate) struct TimerWheel {
    tick: Duration,
    slots: Vec<Vec<Entry>>,
    /// Next absolute tick the cursor will process (all ticks before it
    /// have been expired).
    cursor: u64,
    origin: Instant,
    len: usize,
}

impl TimerWheel {
    /// Creates a wheel with the given tick width and bucket count
    /// (rounded up to a power of two, minimum 1).
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        let n = slots.max(1).next_power_of_two();
        TimerWheel {
            tick: tick.max(Duration::from_millis(1)),
            slots: (0..n).map(|_| Vec::new()).collect(),
            cursor: 0,
            origin: Instant::now(),
            len: 0,
        }
    }

    /// The wheel's tick width — the scheduling resolution, and the
    /// longest a due entry can wait past its deadline before
    /// [`Self::expire`] (called every tick) reports it.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Number of scheduled entries.
    pub fn len(&self) -> usize {
        self.len
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.origin);
        // Round up: an entry never fires before its deadline.
        (elapsed.as_nanos() / self.tick.as_nanos().max(1)) as u64 + 1
    }

    /// Schedules `token` to expire at `deadline` (quantised up to the
    /// next tick boundary; never before the cursor, so an entry in the
    /// past fires on the very next [`Self::expire`]).
    pub fn schedule(&mut self, token: u64, deadline: Instant) {
        let tick = self.tick_of(deadline).max(self.cursor);
        let slot = (tick as usize) & (self.slots.len() - 1);
        self.slots[slot].push(Entry { token, tick });
        self.len += 1;
    }

    /// Drains every entry due at or before `now` into `out`. Walks only
    /// the buckets between the cursor and `now`'s tick; when the clock
    /// jumped a whole revolution ahead, each bucket is visited exactly
    /// once instead.
    pub fn expire(&mut self, now: Instant, out: &mut Vec<u64>) {
        let now_tick = self.tick_of(now).saturating_sub(1);
        if now_tick < self.cursor {
            return;
        }
        let slots = self.slots.len() as u64;
        let walk = (now_tick - self.cursor + 1).min(slots);
        let mut removed = 0usize;
        for step in 0..walk {
            let slot = ((self.cursor + step) as usize) & (self.slots.len() - 1);
            self.slots[slot].retain(|e| {
                if e.tick <= now_tick {
                    out.push(e.token);
                    removed += 1;
                    false
                } else {
                    true
                }
            });
        }
        self.len -= removed;
        self.cursor = now_tick + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expired(wheel: &mut TimerWheel, now: Instant) -> Vec<u64> {
        let mut out = Vec::new();
        wheel.expire(now, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn entries_fire_at_their_deadline_not_before() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        wheel.schedule(1, start + Duration::from_millis(35));
        wheel.schedule(2, start + Duration::from_millis(95));
        assert_eq!(wheel.len(), 2);

        assert!(expired(&mut wheel, start + Duration::from_millis(20)).is_empty());
        // 35 ms quantises up to the 40 ms boundary.
        assert!(expired(&mut wheel, start + Duration::from_millis(34)).is_empty());
        assert_eq!(expired(&mut wheel, start + Duration::from_millis(50)), [1]);
        assert_eq!(wheel.len(), 1);
        assert_eq!(expired(&mut wheel, start + Duration::from_millis(200)), [2]);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn far_future_entries_survive_whole_revolutions() {
        let start = Instant::now();
        // 4 slots × 10 ms tick = one revolution every 40 ms.
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 4);
        wheel.schedule(7, start + Duration::from_millis(250));
        // Several revolutions pass; the entry's bucket is visited each
        // time but the entry stays until its actual tick.
        for ms in [40u64, 80, 120, 160, 200] {
            assert!(
                expired(&mut wheel, start + Duration::from_millis(ms)).is_empty(),
                "fired {ms} ms early"
            );
        }
        assert_eq!(expired(&mut wheel, start + Duration::from_millis(260)), [7]);
    }

    #[test]
    fn clock_jump_expires_everything_due_in_one_pass() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        for t in 0..20u64 {
            wheel.schedule(t, start + Duration::from_millis(10 * (t + 1)));
        }
        // The loop stalled for "an hour": every entry is due, each
        // bucket must be visited exactly once.
        let out = expired(&mut wheel, start + Duration::from_secs(3600));
        assert_eq!(out, (0..20).collect::<Vec<u64>>());
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_expire() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        let _ = expired(&mut wheel, start + Duration::from_millis(500));
        // Scheduled "in the past" relative to the cursor.
        wheel.schedule(3, start);
        assert_eq!(expired(&mut wheel, start + Duration::from_millis(510)), [3]);
    }

    #[test]
    fn duplicate_tokens_fire_once_per_schedule() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        wheel.schedule(9, start + Duration::from_millis(10));
        wheel.schedule(9, start + Duration::from_millis(20));
        assert_eq!(
            expired(&mut wheel, start + Duration::from_millis(100)),
            [9, 9]
        );
    }
}
