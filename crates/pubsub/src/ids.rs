//! Identifier types shared by the simulated middleware (`dynamoth-core`)
//! and the routed TCP tier in this crate.
//!
//! These used to live in `dynamoth-core`, but the plan/ring machinery
//! moved here so the simulator and the real-network router run one
//! implementation; the identifiers came along. `dynamoth-core`
//! re-exports them unchanged.

use std::fmt;

use dynamoth_sim::NodeId;

/// Identifies a pub/sub server (a Redis instance in the paper). Wraps
/// the simulation [`NodeId`] the server's node runs under, which doubles
/// as its network address; on the TCP tier the index is a position in
/// the broker directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub NodeId);

impl ServerId {
    /// The network address of this server.
    pub fn node(self) -> NodeId {
        self.0
    }

    /// A server id from a broker-directory index (TCP tier convention).
    pub fn from_index(index: usize) -> ServerId {
        ServerId(NodeId::from_index(index))
    }

    /// The directory index of this server (TCP tier convention).
    pub fn index(self) -> usize {
        self.0.index()
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0.index())
    }
}

/// Version number of a global plan. Monotonically increasing; "plan 0"
/// is the empty bootstrap plan that resolves everything through
/// consistent hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PlanId(pub u64);

impl fmt::Display for PlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ServerId(NodeId::from_index(3)).to_string(), "H3");
        assert_eq!(PlanId(2).to_string(), "plan2");
    }

    #[test]
    fn index_roundtrip() {
        let s = ServerId::from_index(7);
        assert_eq!(s.index(), 7);
        assert_eq!(s, ServerId(NodeId::from_index(7)));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = ServerId::from_index(1);
        let b = ServerId::from_index(2);
        assert!(a < b);
        let set: HashSet<ServerId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
