//! A fault-tolerant RESP pub/sub client for the TCP broker.
//!
//! The paper's lazy-reconfiguration machinery assumes clients that
//! survive broker churn: they detect dead or silent servers, reconnect,
//! re-issue their subscriptions, retry in-flight publications, and
//! suppress the duplicates retries can create (via globally unique
//! message ids — the paper's §V duplicate-suppression scheme).
//! [`TcpPubSubClient`] is that client for the real-network path:
//!
//! - **Reconnect**: capped exponential backoff with full jitter
//!   (AWS-style: `delay = uniform(0, min(cap, base·2ᵃᵗᵗᵉᵐᵖᵗ))`), so a
//!   thundering herd of clients re-spreads itself after a broker
//!   restart.
//! - **Resubscribe + resume**: the desired channel set survives the
//!   socket; on every reconnect the client transparently
//!   re-`SUBSCRIBE`s before anything else. With
//!   [`ClientConfig::resume`] on (the default) each subscription uses
//!   the broker's `DMSEQ1` from-sequence form: the client tracks the
//!   highest sequence seen per channel and asks the broker to replay
//!   everything after it, so an outage longer than the dedup window
//!   loses nothing while the gap still fits the broker's retention
//!   ring — and surfaces [`ClientEvent::Gap`] (never silence) when it
//!   does not.
//! - **Publish retry + dedup**: each publication carries a globally
//!   unique wire id (`origin`, `seq`) inside the payload
//!   ([`frame_payload`]); unacknowledged publications are retried after
//!   a reconnect, and the receive path suppresses re-deliveries through
//!   a sliding dedup window, giving exactly-once delivery to a
//!   connected subscriber across broker failures.
//! - **Liveness**: `PING` heartbeats plus a receive deadline detect a
//!   silent (half-open) broker within [`ClientConfig::liveness_timeout`]
//!   instead of hanging forever.
//! - **Observability**: every state change is surfaced as a
//!   [`ClientEvent`] (`Connected` / `Disconnected` / `Resubscribed` /
//!   `Dropped` / `GaveUp`), so callers see degradation instead of
//!   silence.
//!
//! The client is plain blocking std networking on one worker thread —
//! the same substrate as the broker — and interoperates with any RESP
//! pub/sub server: payloads published by id-unaware clients are
//! delivered verbatim (no id, no dedup).

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::resp::{self, Value};
use crate::rng::SplitMix64;
use crate::seq;

/// Tuning knobs of a [`TcpPubSubClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// First-retry backoff ceiling; doubles per failed attempt.
    pub reconnect_base: Duration,
    /// Upper bound of the backoff ceiling.
    pub reconnect_cap: Duration,
    /// Consecutive failed connection attempts before the client emits
    /// [`ClientEvent::GaveUp`] and stops. `None` retries forever.
    pub max_reconnect_attempts: Option<u32>,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// How often to send `PING` when the connection is otherwise idle
    /// (clamped to at most half the liveness timeout).
    pub heartbeat_interval: Duration,
    /// A connection that has received nothing for this long is declared
    /// dead ([`DisconnectReason::LivenessTimeout`]) — this is what
    /// catches half-open connections that TCP alone never reports.
    pub liveness_timeout: Duration,
    /// Sliding dedup window size, in message ids (the paper's
    /// duplicate-suppression window).
    pub dedup_window: usize,
    /// Send attempts per publication before it is dropped with
    /// [`DropCause::RetriesExhausted`].
    pub publish_retries: u32,
    /// Queued publications (pending + unacknowledged) before the oldest
    /// is dropped with [`DropCause::QueueFull`].
    pub max_pending_publishes: usize,
    /// Worker wake-up granularity: command latency, heartbeat check
    /// resolution and shutdown latency are all bounded by one tick.
    pub tick: Duration,
    /// Seed for the jitter PRNG and the origin id; `None` uses OS
    /// entropy. Fixing it makes reconnect timing reproducible in tests.
    pub seed: Option<u64>,
    /// Subscribe with the broker's `DMSEQ1` from-sequence form and
    /// resume from the per-channel high-water sequence after every
    /// reconnect. Against a broker with retention disabled the form
    /// degrades to a plain subscription; disabling it here restores the
    /// pre-resume wire behaviour entirely.
    pub resume: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            reconnect_base: Duration::from_millis(50),
            reconnect_cap: Duration::from_secs(2),
            max_reconnect_attempts: None,
            connect_timeout: Duration::from_secs(1),
            heartbeat_interval: Duration::from_millis(500),
            liveness_timeout: Duration::from_secs(3),
            dedup_window: 1024,
            publish_retries: 8,
            max_pending_publishes: 4096,
            tick: Duration::from_millis(20),
            seed: None,
            resume: true,
        }
    }
}

/// Globally unique wire id of a publication: the publishing client's
/// random 64-bit `origin` plus its monotonically increasing `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId {
    /// The publishing client instance.
    pub origin: u64,
    /// Per-origin sequence number.
    pub seq: u64,
}

/// Why a connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectReason {
    /// A socket read/write error.
    Io,
    /// The server closed the connection in an orderly way.
    ServerClosed,
    /// Nothing was received within the liveness timeout — the broker is
    /// silent or the connection is half-open.
    LivenessTimeout,
    /// The server sent bytes that are not valid RESP.
    Protocol,
}

/// Why a message or publication was dropped instead of delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DropCause {
    /// An incoming delivery carried an id already inside the dedup
    /// window (a retry duplicate), and was suppressed.
    Duplicate {
        /// Channel the duplicate arrived on.
        channel: String,
    },
    /// An outgoing publication exhausted its send attempts.
    RetriesExhausted {
        /// Channel it was addressed to.
        channel: String,
    },
    /// The publish queue overflowed and shed its oldest entry.
    QueueFull {
        /// Channel the shed publication was addressed to.
        channel: String,
    },
}

/// A state change of a [`TcpPubSubClient`], delivered via
/// [`TcpPubSubClient::try_event`] so callers observe degradation
/// instead of hanging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// A TCP connection to the broker was established.
    Connected {
        /// 1-based connection attempt this session took (resets after a
        /// connection that received data).
        attempt: u32,
    },
    /// The connection was lost; the client will reconnect.
    Disconnected {
        /// Why it was lost.
        reason: DisconnectReason,
    },
    /// The desired channel set was re-issued after a (re)connect.
    Resubscribed {
        /// How many channels were re-subscribed.
        channels: usize,
    },
    /// A message or publication was dropped.
    Dropped {
        /// What was dropped and why.
        cause: DropCause,
    },
    /// A from-sequence resubscribe finished replaying the broker's
    /// retained suffix; live delivery continues seamlessly after it.
    Resumed {
        /// Channel that resumed.
        channel: String,
        /// Frames the broker replayed.
        replayed: u64,
    },
    /// The broker could not replay back to the requested sequence — the
    /// missing frames were evicted from retention (or the broker
    /// restarted and reset its sequence space). Loss is bounded and
    /// *explicit*: it is exactly `missed` frames (zero only for the
    /// discontinuities, which still surface as a gap).
    Gap {
        /// Channel with the hole.
        channel: String,
        /// Frames between the requested and first-replayable sequence.
        missed: u64,
        /// Why the hole exists.
        reason: GapReason,
    },
    /// `max_reconnect_attempts` consecutive attempts failed; the worker
    /// stopped.
    GaveUp,
}

/// Why a [`ClientEvent::Gap`] was emitted. Sequences are per-broker
/// *incarnation*: a broker that restarts — and a channel that fails over
/// to a different broker — starts a fresh sequence stream, so continuity
/// with the old stream is impossible and the discontinuity is surfaced
/// instead of silently conflated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapReason {
    /// The broker evicted the requested frames from retention; `missed`
    /// counts them exactly.
    Evicted,
    /// The broker's sequence space restarted under us (broker restart):
    /// the old high-water mark is meaningless in the new incarnation.
    Restart,
    /// The channel's home broker died and the channel was re-pointed to
    /// a survivor with a fresh sequence stream. Frames acknowledged by
    /// the dead broker but never delivered are unquantifiable across
    /// incarnations, so `missed` is 0; applications that need stronger
    /// guarantees should re-publish their unconfirmed tail on this
    /// event.
    Failover,
}

/// A delivered publication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Channel it was published on.
    pub channel: String,
    /// Payload with the wire-id header (if any) stripped.
    pub payload: Vec<u8>,
    /// The publication's unique id, when the publisher framed one.
    pub id: Option<MessageId>,
    /// The broker-assigned per-channel sequence, when this subscription
    /// is sequenced (see [`ClientConfig::resume`]).
    pub seq: Option<u64>,
}

const ID_MAGIC: &[u8] = b"DMID1;";
/// Bytes the wire-id header adds in front of a framed payload.
pub const ID_HEADER_LEN: usize = 6 + 16 + 16 + 1;

/// Frames `body` with `id` for the paper's duplicate-suppression
/// scheme: `DMID1;<origin:016x><seq:016x>;<body>`. The header is plain
/// payload bytes to the broker, so unmodified RESP servers forward it
/// untouched.
pub fn frame_payload(id: MessageId, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ID_HEADER_LEN + body.len());
    out.extend_from_slice(ID_MAGIC);
    out.extend_from_slice(format!("{:016x}{:016x}", id.origin, id.seq).as_bytes());
    out.push(b';');
    out.extend_from_slice(body);
    out
}

/// Splits a delivered payload into its wire id (if the publisher framed
/// one) and the body. Payloads without a valid header pass through
/// verbatim.
pub fn parse_payload(payload: &[u8]) -> (Option<MessageId>, &[u8]) {
    if payload.len() < ID_HEADER_LEN
        || !payload.starts_with(ID_MAGIC)
        || payload[ID_HEADER_LEN - 1] != b';'
    {
        return (None, payload);
    }
    let hex = &payload[ID_MAGIC.len()..ID_HEADER_LEN - 1];
    let Ok(hex) = std::str::from_utf8(hex) else {
        return (None, payload);
    };
    let (origin, seq) = hex.split_at(16);
    match (
        u64::from_str_radix(origin, 16),
        u64::from_str_radix(seq, 16),
    ) {
        (Ok(origin), Ok(seq)) => (Some(MessageId { origin, seq }), &payload[ID_HEADER_LEN..]),
        _ => (None, payload),
    }
}

/// Sliding duplicate-suppression window (mirrors the simulator client's
/// scheme): a set for O(1) membership plus FIFO eviction order. Shared
/// with the routed tier: the router and the dispatcher sidecar keep
/// their own windows over the same wire ids.
pub(crate) struct Dedup {
    seen: HashSet<MessageId>,
    order: VecDeque<MessageId>,
}

impl Dedup {
    pub(crate) fn new() -> Dedup {
        Dedup {
            seen: HashSet::new(),
            order: VecDeque::new(),
        }
    }

    /// Returns `true` when `id` is new (and records it), `false` for a
    /// duplicate inside the window.
    pub(crate) fn insert(&mut self, id: MessageId, cap: usize) -> bool {
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        while self.order.len() > cap.max(1) {
            if let Some(evicted) = self.order.pop_front() {
                self.seen.remove(&evicted);
            }
        }
        true
    }
}

enum Cmd {
    Subscribe {
        channel: String,
        from: Option<u64>,
    },
    Unsubscribe(String),
    Publish {
        channel: String,
        body: Vec<u8>,
    },
    PublishRaw {
        channel: String,
        payload: Vec<u8>,
    },
    /// Drain every queued/unacknowledged publication and hand it to the
    /// caller (failover rescue; see [`TcpPubSubClient::take_unsent`]).
    TakeUnsent(mpsc::Sender<Vec<(String, Vec<u8>)>>),
}

/// Per-channel resume bookkeeping: where the caller asked to start and
/// the highest broker sequence seen so far.
#[derive(Debug, Default, Clone, Copy)]
struct ResumeState {
    /// Caller-requested starting sequence ([`TcpPubSubClient::subscribe_from`]).
    base_from: Option<u64>,
    /// Highest sequence received on the channel; the next resubscribe
    /// resumes at `high_water + 1`.
    high_water: Option<u64>,
}

impl ResumeState {
    /// The `SUBSCRIBE` argument re-establishing this subscription:
    /// plain name without resume, `DMSEQ1`-framed otherwise — from the
    /// furthest point already covered, live when nothing is.
    fn subscribe_arg(&self, resume: bool, channel: &str) -> String {
        if !resume {
            return channel.to_owned();
        }
        let from = match (self.base_from, self.high_water) {
            (None, None) => None,
            (base, hw) => Some(base.unwrap_or(0).max(hw.map_or(0, |h| h + 1))),
        };
        seq::encode_subscribe_arg(channel, from)
    }
}

struct ClientShared {
    running: AtomicBool,
    cmds: Mutex<VecDeque<Cmd>>,
    /// `true` once the worker thread has exited (gave up or shut down);
    /// after that, commands are never processed again.
    exited: AtomicBool,
    /// Publications the worker deposited when it gave up, so
    /// [`TcpPubSubClient::take_unsent`] can still rescue them from a
    /// client whose worker is gone.
    stranded: Mutex<Vec<(String, Vec<u8>)>>,
}

/// A resilient RESP pub/sub client (see the module docs for the failure
/// model).
///
/// # Examples
///
/// ```no_run
/// use dynamoth_pubsub::{ClientEvent, TcpPubSubClient};
/// use std::time::Duration;
///
/// let client = TcpPubSubClient::connect("127.0.0.1:6379").expect("resolve");
/// client.subscribe("tile_1");
/// client.publish("tile_1", b"hello");
/// while let Some(msg) = client.message_timeout(Duration::from_secs(1)) {
///     println!("{}: {} bytes", msg.channel, msg.payload.len());
/// }
/// client.shutdown();
/// ```
pub struct TcpPubSubClient {
    shared: Arc<ClientShared>,
    worker: Option<JoinHandle<()>>,
    messages: Mutex<mpsc::Receiver<Message>>,
    events: Mutex<mpsc::Receiver<ClientEvent>>,
    origin: u64,
}

impl TcpPubSubClient {
    /// Starts a client for the broker at `addr` with default tuning.
    /// Returns immediately; the connection is established (and forever
    /// re-established) by a background worker — watch
    /// [`ClientEvent`]s to observe it.
    ///
    /// # Errors
    ///
    /// Returns an error only when `addr` cannot be resolved.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpPubSubClient> {
        TcpPubSubClient::connect_with(addr, ClientConfig::default())
    }

    /// Starts a client with explicit [`ClientConfig`] tuning.
    ///
    /// # Errors
    ///
    /// Returns an error only when `addr` cannot be resolved.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> std::io::Result<TcpPubSubClient> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address resolved")
        })?;
        Ok(TcpPubSubClient::connect_addr(addr, config))
    }

    /// Starts a client for an already-resolved address. Infallible: the
    /// TCP connection itself is established (and re-established, with
    /// capped-exponential backoff) by the background worker, so there is
    /// nothing left that can fail synchronously — watch
    /// [`ClientEvent`]s to observe connection state. This is the entry
    /// point for infrastructure that must never panic or abort on a
    /// temporarily unreachable peer (dispatcher sidecars, the live
    /// balancer).
    pub fn connect_addr(addr: SocketAddr, config: ClientConfig) -> TcpPubSubClient {
        let shared = Arc::new(ClientShared {
            running: AtomicBool::new(true),
            cmds: Mutex::new(VecDeque::new()),
            exited: AtomicBool::new(false),
            stranded: Mutex::new(Vec::new()),
        });
        let (msg_tx, msg_rx) = mpsc::channel();
        let (event_tx, event_rx) = mpsc::channel();
        let mut rng = match config.seed {
            Some(seed) => SplitMix64::new(seed),
            None => SplitMix64::from_entropy(),
        };
        let origin = rng.next_u64();
        let worker = Worker {
            addr,
            cfg: config,
            shared: Arc::clone(&shared),
            messages: msg_tx,
            events: event_tx,
            rng,
            origin,
            next_seq: 0,
            desired: BTreeMap::new(),
            pending: VecDeque::new(),
            unacked: VecDeque::new(),
            dedup: Dedup::new(),
        };
        let handle = std::thread::spawn(move || worker.run());
        TcpPubSubClient {
            shared,
            worker: Some(handle),
            messages: Mutex::new(msg_rx),
            events: Mutex::new(event_rx),
            origin,
        }
    }

    /// This client's random 64-bit origin — the first half of every
    /// wire id it frames. The routed tier derives per-client control
    /// channel names from it.
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// Adds `channel` to the desired subscription set; the worker
    /// subscribes now (if connected) and after every reconnect. With
    /// [`ClientConfig::resume`] on, delivery starts live and every
    /// later reconnect resumes from the highest sequence seen.
    pub fn subscribe(&self, channel: &str) {
        self.shared.cmds.lock().push_back(Cmd::Subscribe {
            channel: channel.to_owned(),
            from: None,
        });
    }

    /// Like [`Self::subscribe`], but asks the broker to first replay
    /// its retained frames of `channel` starting at sequence `from`
    /// (the routed tier passes 0 after a `<switch>` migration so the
    /// new home broker's whole post-migration suffix replays). The
    /// replay ends with a [`ClientEvent::Resumed`], or surfaces a
    /// [`ClientEvent::Gap`] when `from` is no longer retained.
    pub fn subscribe_from(&self, channel: &str, from: u64) {
        self.shared.cmds.lock().push_back(Cmd::Subscribe {
            channel: channel.to_owned(),
            from: Some(from),
        });
    }

    /// Removes `channel` from the desired subscription set.
    pub fn unsubscribe(&self, channel: &str) {
        self.shared
            .cmds
            .lock()
            .push_back(Cmd::Unsubscribe(channel.to_owned()));
    }

    /// Publishes `body` on `channel` with a fresh globally unique wire
    /// id. The publication is queued, retried across reconnects until
    /// acknowledged, and eventually dropped (with a
    /// [`ClientEvent::Dropped`]) if the broker never accepts it.
    pub fn publish(&self, channel: &str, body: &[u8]) {
        self.shared.cmds.lock().push_back(Cmd::Publish {
            channel: channel.to_owned(),
            body: body.to_vec(),
        });
    }

    /// Publishes an already-framed payload verbatim — no new wire id is
    /// allocated and any existing `DMID1` header is preserved. This is
    /// the forwarding primitive of the routed tier: a dispatcher
    /// re-publishing a wrong-server publication keeps the original id,
    /// so receive-side dedup windows still suppress duplicates.
    pub fn publish_raw(&self, channel: &str, payload: &[u8]) {
        self.shared.cmds.lock().push_back(Cmd::PublishRaw {
            channel: channel.to_owned(),
            payload: payload.to_vec(),
        });
    }

    /// Drains every publication still queued or unacknowledged and
    /// returns it as `(channel, framed payload)` pairs, oldest first.
    /// The payloads keep their original `DMID1` wire ids, so
    /// re-publishing them via [`Self::publish_raw`] on another broker is
    /// dedup-safe: entries that in fact landed before the drain are
    /// suppressed by receive-side windows. This is the failover rescue
    /// primitive — when this client's broker is declared dead, the
    /// router moves the stranded tail to a survivor instead of retrying
    /// into the corpse. Works on a worker that already gave up (it
    /// deposits its queue on exit); a live worker that does not respond
    /// within `timeout` yields an empty result.
    pub fn take_unsent(&self, timeout: Duration) -> Vec<(String, Vec<u8>)> {
        let (tx, rx) = mpsc::channel();
        self.shared.cmds.lock().push_back(Cmd::TakeUnsent(tx));
        // A worker that already gave up deposited its queue instead;
        // only wait on the command round-trip while the worker lives.
        let mut out = std::mem::take(&mut *self.shared.stranded.lock());
        if !self.shared.exited.load(Ordering::SeqCst) {
            out.extend(rx.recv_timeout(timeout).unwrap_or_default());
        }
        out.extend(std::mem::take(&mut *self.shared.stranded.lock()));
        out
    }

    /// The next delivered message, if one is already queued.
    pub fn try_message(&self) -> Option<Message> {
        self.messages.lock().try_recv().ok()
    }

    /// Blocks up to `timeout` for the next delivered message.
    pub fn message_timeout(&self, timeout: Duration) -> Option<Message> {
        self.messages.lock().recv_timeout(timeout).ok()
    }

    /// The next client event, if one is already queued.
    pub fn try_event(&self) -> Option<ClientEvent> {
        self.events.lock().try_recv().ok()
    }

    /// Blocks up to `timeout` for the next client event.
    pub fn event_timeout(&self, timeout: Duration) -> Option<ClientEvent> {
        self.events.lock().recv_timeout(timeout).ok()
    }

    /// Stops the worker and closes the connection.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpPubSubClient {
    fn drop(&mut self) {
        if self.worker.is_some() {
            self.stop();
        }
    }
}

impl std::fmt::Debug for TcpPubSubClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpPubSubClient").finish_non_exhaustive()
    }
}

struct PendingPub {
    channel: String,
    /// Id-framed payload; every send encodes the same `PUBLISH` frame
    /// from it, so a retry re-sends byte-identical data — same id,
    /// dedupable — and a failover rescue can re-home it verbatim.
    framed: Vec<u8>,
    attempts: u32,
}

impl PendingPub {
    fn wire(&self) -> Vec<u8> {
        let mut wire = Vec::new();
        resp::encode(
            &Value::array(vec![
                Value::bulk("PUBLISH"),
                Value::bulk(self.channel.as_str()),
                Value::Bulk(Some(self.framed.clone())),
            ]),
            &mut wire,
        );
        wire
    }
}

struct Worker {
    addr: SocketAddr,
    cfg: ClientConfig,
    shared: Arc<ClientShared>,
    messages: mpsc::Sender<Message>,
    events: mpsc::Sender<ClientEvent>,
    rng: SplitMix64,
    origin: u64,
    next_seq: u64,
    desired: BTreeMap<String, ResumeState>,
    pending: VecDeque<PendingPub>,
    unacked: VecDeque<PendingPub>,
    dedup: Dedup,
}

impl Worker {
    fn running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }

    fn emit(&self, event: ClientEvent) {
        let _ = self.events.send(event);
    }

    fn run(mut self) {
        // Failed attempts since the last connection that received data.
        let mut attempts: u32 = 0;
        while self.running() {
            match TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout) {
                Ok(stream) => {
                    attempts += 1;
                    self.emit(ClientEvent::Connected { attempt: attempts });
                    let got_data = self.session(stream);
                    // Whatever was in flight when the session died goes
                    // back to the head of the queue, oldest first.
                    while let Some(p) = self.unacked.pop_back() {
                        self.pending.push_front(p);
                    }
                    if got_data {
                        attempts = 0;
                    }
                }
                Err(_) => {
                    attempts += 1;
                    // A refused/timed-out connect is down-ness evidence
                    // too: without this a broker that died *before* the
                    // first contact would never trip the router's
                    // failover timer (no session, no event, no probe).
                    self.emit(ClientEvent::Disconnected {
                        reason: DisconnectReason::Io,
                    });
                }
            }
            if !self.running() {
                break;
            }
            if let Some(max) = self.cfg.max_reconnect_attempts {
                if attempts >= max {
                    // Deposit the undeliverable queue where
                    // `take_unsent` can rescue it after this worker is
                    // gone (a failover re-homes it to a survivor).
                    let stranded: Vec<(String, Vec<u8>)> = self
                        .unacked
                        .drain(..)
                        .chain(self.pending.drain(..))
                        .map(|p| (p.channel, p.framed))
                        .collect();
                    *self.shared.stranded.lock() = stranded;
                    self.emit(ClientEvent::GaveUp);
                    break;
                }
            }
            self.backoff_sleep(attempts);
        }
        self.shared.exited.store(true, Ordering::SeqCst);
    }

    /// Runs one connected session; returns whether any bytes were
    /// received (which is what resets the backoff counter — a half-open
    /// accept that never speaks does not count as progress).
    fn session(&mut self, mut stream: TcpStream) -> bool {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.cfg.tick));
        // Transparent re-subscribe before anything else, resuming each
        // channel from its high-water sequence.
        if !self.desired.is_empty() {
            let mut words = vec![Value::bulk("SUBSCRIBE")];
            words.extend(
                self.desired
                    .iter()
                    .map(|(c, st)| Value::bulk(st.subscribe_arg(self.cfg.resume, c))),
            );
            let mut wire = Vec::new();
            resp::encode(&Value::array(words), &mut wire);
            if stream.write_all(&wire).is_err() {
                self.emit(ClientEvent::Disconnected {
                    reason: DisconnectReason::Io,
                });
                return false;
            }
            self.emit(ClientEvent::Resubscribed {
                channels: self.desired.len(),
            });
        }
        // PING often enough that a silent broker misses several
        // heartbeats before the liveness deadline fires.
        let ping_every = self
            .cfg
            .heartbeat_interval
            .min(self.cfg.liveness_timeout / 2)
            .max(Duration::from_millis(1));
        let mut last_rx = Instant::now();
        let mut last_ping = Instant::now();
        let mut got_data = false;
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if !self.running() {
                return got_data;
            }
            let reason = 'fail: {
                if !self.apply_commands(Some(&mut stream)) || !self.send_pending(&mut stream) {
                    break 'fail Some(DisconnectReason::Io);
                }
                match stream.read(&mut chunk) {
                    Ok(0) => break 'fail Some(DisconnectReason::ServerClosed),
                    Ok(n) => {
                        last_rx = Instant::now();
                        got_data = true;
                        buf.extend_from_slice(&chunk[..n]);
                        loop {
                            match resp::decode(&buf) {
                                Ok(Some((value, used))) => {
                                    buf.drain(..used);
                                    self.handle_frame(value);
                                }
                                Ok(None) => break,
                                Err(_) => break 'fail Some(DisconnectReason::Protocol),
                            }
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break 'fail Some(DisconnectReason::Io),
                }
                if last_rx.elapsed() > self.cfg.liveness_timeout {
                    break 'fail Some(DisconnectReason::LivenessTimeout);
                }
                if last_ping.elapsed() >= ping_every {
                    let mut wire = Vec::new();
                    resp::encode(&Value::array(vec![Value::bulk("PING")]), &mut wire);
                    if stream.write_all(&wire).is_err() {
                        break 'fail Some(DisconnectReason::Io);
                    }
                    last_ping = Instant::now();
                }
                None
            };
            if let Some(reason) = reason {
                self.emit(ClientEvent::Disconnected { reason });
                return got_data;
            }
        }
    }

    /// Interprets one server frame.
    fn handle_frame(&mut self, value: Value) {
        match value {
            Value::Array(Some(items)) => {
                let kind = match items.first() {
                    Some(Value::Bulk(Some(k))) => k.as_slice(),
                    _ => return,
                };
                if kind != b"message" || items.len() != 3 {
                    return; // subscribe/unsubscribe confirmations etc.
                }
                let channel = match &items[1] {
                    Value::Bulk(Some(c)) => String::from_utf8_lossy(c).into_owned(),
                    _ => return,
                };
                let mut payload = match &items[2] {
                    Value::Bulk(Some(p)) => p.as_slice(),
                    _ => return,
                };
                let mut broker_seq = None;
                if self.cfg.resume {
                    // Resume-protocol markers arrive as unicast pushes
                    // on the channel; intercept them before the normal
                    // delivery path.
                    if let Some((requested, resume_from)) = seq::parse_gap(payload) {
                        // `resume_from < requested` means the broker's
                        // sequence space restarted under us: the stale
                        // high-water must be forgotten or every future
                        // resubscribe re-requests it.
                        let reason = if resume_from < requested {
                            if let Some(st) = self.desired.get_mut(&channel) {
                                st.base_from = None;
                                st.high_water = None;
                            }
                            GapReason::Restart
                        } else {
                            GapReason::Evicted
                        };
                        self.emit(ClientEvent::Gap {
                            channel,
                            missed: resume_from.saturating_sub(requested),
                            reason,
                        });
                        return;
                    }
                    if let Some((replayed, _next)) = seq::parse_resume(payload) {
                        self.emit(ClientEvent::Resumed { channel, replayed });
                        return;
                    }
                    if let Some((s, body)) = seq::parse_seq_payload(payload) {
                        broker_seq = Some(s);
                        payload = body;
                        if let Some(st) = self.desired.get_mut(&channel) {
                            st.high_water = Some(st.high_water.map_or(s, |h| h.max(s)));
                        }
                    }
                }
                let (id, body) = parse_payload(payload);
                if let Some(id) = id {
                    if !self.dedup.insert(id, self.cfg.dedup_window) {
                        self.emit(ClientEvent::Dropped {
                            cause: DropCause::Duplicate { channel },
                        });
                        return;
                    }
                }
                let _ = self.messages.send(Message {
                    channel,
                    payload: body.to_vec(),
                    id,
                    seq: broker_seq,
                });
            }
            // Publish acknowledgement (receiver count). Replies on one
            // connection are FIFO, so it acks the oldest in flight.
            Value::Integer(_) => {
                self.unacked.pop_front();
            }
            // An error reply deliberately acks nothing: a broker that
            // choked on a torn frame error-replies before closing, and
            // the publish it refused must be retried, not silently
            // counted delivered. Retrying a publish that *did* land is
            // safe (the dedup window suppresses it); dropping one that
            // did not is a lost message.
            // +PONG, -ERR and anything else: receipt already fed
            // liveness.
            _ => {}
        }
    }

    /// Applies queued caller commands; `stream` is `None` while
    /// disconnected (the desired set and publish queue still update).
    /// Returns `false` on a write error.
    fn apply_commands(&mut self, mut stream: Option<&mut TcpStream>) -> bool {
        loop {
            let cmd = match self.shared.cmds.lock().pop_front() {
                Some(c) => c,
                None => return true,
            };
            match cmd {
                Cmd::Subscribe { channel, from } => {
                    let is_new = !self.desired.contains_key(&channel);
                    let st = self.desired.entry(channel.clone()).or_default();
                    if from.is_some() {
                        st.base_from = from;
                    }
                    // An explicit `from` re-issues the SUBSCRIBE even on
                    // an already-subscribed channel: the broker replaces
                    // the registration and replays from the new point.
                    if is_new || from.is_some() {
                        let arg = st.subscribe_arg(self.cfg.resume, &channel);
                        if let Some(s) = stream.as_deref_mut() {
                            if !write_command(s, &["SUBSCRIBE", &arg]) {
                                return false;
                            }
                        }
                    }
                }
                Cmd::Unsubscribe(channel) => {
                    if self.desired.remove(&channel).is_some() {
                        if let Some(s) = stream.as_deref_mut() {
                            if !write_command(s, &["UNSUBSCRIBE", &channel]) {
                                return false;
                            }
                        }
                    }
                }
                Cmd::Publish { channel, body } => {
                    let id = MessageId {
                        origin: self.origin,
                        seq: self.next_seq,
                    };
                    self.next_seq += 1;
                    let framed = frame_payload(id, &body);
                    self.enqueue_publish(channel, framed);
                }
                Cmd::PublishRaw { channel, payload } => {
                    self.enqueue_publish(channel, payload);
                }
                Cmd::TakeUnsent(reply) => {
                    // Oldest first: in-flight (unacked) precede queued.
                    let drained: Vec<(String, Vec<u8>)> = self
                        .unacked
                        .drain(..)
                        .chain(self.pending.drain(..))
                        .map(|p| (p.channel, p.framed))
                        .collect();
                    let _ = reply.send(drained);
                }
            }
        }
    }

    /// Queues one fully framed payload for publication, shedding the
    /// oldest pending entry when the queue is full.
    fn enqueue_publish(&mut self, channel: String, framed: Vec<u8>) {
        if self.pending.len() + self.unacked.len() >= self.cfg.max_pending_publishes {
            if let Some(shed) = self.pending.pop_front() {
                self.emit(ClientEvent::Dropped {
                    cause: DropCause::QueueFull {
                        channel: shed.channel,
                    },
                });
            }
        }
        self.pending.push_back(PendingPub {
            channel,
            framed,
            attempts: 0,
        });
    }

    /// Sends every queued publication, dropping those that exhausted
    /// their attempts. Returns `false` on a write error.
    fn send_pending(&mut self, stream: &mut TcpStream) -> bool {
        while let Some(mut p) = self.pending.pop_front() {
            if p.attempts >= self.cfg.publish_retries {
                self.emit(ClientEvent::Dropped {
                    cause: DropCause::RetriesExhausted { channel: p.channel },
                });
                continue;
            }
            p.attempts += 1;
            if stream.write_all(&p.wire()).is_err() {
                self.pending.push_front(p);
                return false;
            }
            self.unacked.push_back(p);
        }
        true
    }

    /// Sleeps for a full-jitter backoff delay, staying responsive to
    /// shutdown and still absorbing caller commands.
    fn backoff_sleep(&mut self, attempts: u32) {
        let base = self.cfg.reconnect_base.as_millis().max(1) as u64;
        let cap = self.cfg.reconnect_cap.as_millis().max(1) as u64;
        let exp = attempts.saturating_sub(1).min(16);
        let ceiling = cap.min(base.saturating_mul(1u64 << exp)).max(1);
        let delay = Duration::from_millis(1 + self.rng.next_below(ceiling));
        let deadline = Instant::now() + delay;
        while self.running() {
            self.apply_commands(None);
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
        }
    }
}

/// Encodes and writes one command array; returns `false` on error.
fn write_command(stream: &mut TcpStream, words: &[&str]) -> bool {
    let value = Value::array(words.iter().map(|w| Value::bulk(*w)).collect());
    let mut wire = Vec::new();
    resp::encode(&value, &mut wire);
    stream.write_all(&wire).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_ids_roundtrip() {
        let id = MessageId {
            origin: 0xdead_beef_cafe_f00d,
            seq: 42,
        };
        let framed = frame_payload(id, b"position update");
        let (parsed, body) = parse_payload(&framed);
        assert_eq!(parsed, Some(id));
        assert_eq!(body, b"position update");
    }

    #[test]
    fn unframed_payloads_pass_through() {
        for raw in [&b"plain"[..], b"", b"DMID1;short", &[0u8; 64][..]] {
            let (id, body) = parse_payload(raw);
            assert_eq!(id, None);
            assert_eq!(body, raw);
        }
    }

    #[test]
    fn header_lookalike_with_bad_hex_passes_through() {
        let mut fake = Vec::new();
        fake.extend_from_slice(ID_MAGIC);
        fake.extend_from_slice(&[b'z'; 32]);
        fake.push(b';');
        fake.extend_from_slice(b"body");
        let (id, body) = parse_payload(&fake);
        assert_eq!(id, None);
        assert_eq!(body, &fake[..]);
    }

    #[test]
    fn resubscribe_arg_resumes_past_the_furthest_point() {
        let fresh = ResumeState::default();
        // A fresh subscription goes live-sequenced: no history replay.
        assert_eq!(fresh.subscribe_arg(true, "ch"), "DMSEQ1;-;ch");
        assert_eq!(fresh.subscribe_arg(false, "ch"), "ch");
        let hw = ResumeState {
            base_from: None,
            high_water: Some(9),
        };
        assert_eq!(
            hw.subscribe_arg(true, "ch"),
            format!("DMSEQ1;{:016x};ch", 10)
        );
        // An explicit base only wins while it lies beyond the
        // high-water mark.
        let both = ResumeState {
            base_from: Some(3),
            high_water: Some(9),
        };
        assert_eq!(
            both.subscribe_arg(true, "ch"),
            format!("DMSEQ1;{:016x};ch", 10)
        );
        let ahead = ResumeState {
            base_from: Some(42),
            high_water: Some(9),
        };
        assert_eq!(
            ahead.subscribe_arg(true, "ch"),
            format!("DMSEQ1;{:016x};ch", 42)
        );
    }

    #[test]
    fn dedup_window_is_sliding_and_bounded() {
        let mut dedup = Dedup::new();
        let mid = |seq| MessageId { origin: 1, seq };
        for seq in 0..10 {
            assert!(dedup.insert(mid(seq), 4));
        }
        assert_eq!(dedup.seen.len(), 4);
        // Recent ids are suppressed …
        for seq in 6..10 {
            assert!(!dedup.insert(mid(seq), 4));
        }
        // … while ids past the window are (correctly) fresh again.
        assert!(dedup.insert(mid(0), 4));
    }
}
