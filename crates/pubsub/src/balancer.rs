//! The live load balancer: Dynamoth's control loop (§III) closed over
//! real TCP brokers.
//!
//! Two services make the loop:
//!
//! - A [`LoadReporter`] runs next to each broker. It periodically
//!   harvests the broker's [`BrokerLoadAnalyzer`](crate::load) deltas
//!   and publishes them — as ordinary pub/sub traffic on the broker's
//!   own `__dmc.lla.*` channel — so the balancer needs no side channel
//!   and the broker stays protocol-unmodified, exactly like the paper's
//!   LLA-over-Redis design.
//! - One [`LiveLoadBalancer`] subscribes to every broker's report
//!   channel, feeds the reports into the same [`MetricsStore`] /
//!   [`LoadView`] / Algorithm 1 / Algorithm 2 / low-load-drain pipeline
//!   the simulator uses, and turns resulting plan deltas into
//!   [`InstallFrame`]s published to the involved brokers' dispatcher
//!   sidecars. The sidecars then run the ordinary lazy-reconfiguration
//!   window (`<switch>`, `MOVED`, bidirectional forwarding), so a hot
//!   channel migrates with no client involvement and exactly-once
//!   delivery intact.
//!
//! The balancer is deliberately stateless towards the brokers: if it
//! dies, traffic keeps flowing under the last installed plan — the data
//! plane never depends on the control plane being alive.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::balance::bounded::BoundedPlacer;
use crate::balance::estimator::LoadView;
use crate::balance::metrics::{ChannelAggregate, LlaReport, MetricsStore};
use crate::balance::{channel_level, high_load, low_load, CapacityEstimator, Tuning};
use crate::broker::BrokerLoadHandle;
use crate::channel::Channel as ChannelId;
use crate::client::{ClientConfig, TcpPubSubClient};
use crate::control::{
    channel_id_of, decode_report, encode_report, install_channel, is_control_channel, lla_channel,
    InstallFrame, Quarantine,
};
use crate::hashing::{Ring, DEFAULT_VNODES};
use crate::ids::{PlanId, ServerId};
use crate::plan::{ChannelMapping, Plan};

/// Tuning knobs of a [`LiveLoadBalancer`].
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Thresholds for Algorithms 1/2 and the low-load drain.
    pub tuning: Tuning,
    /// Provisioned broker capacity in bytes per report interval — the
    /// floor of the observed-capacity estimate (`T_i`).
    pub capacity_floor: f64,
    /// Evaluation cadence. Keep close to the [`LoadReporter`] interval:
    /// the metrics window counts reports, not wall time.
    pub tick: Duration,
    /// Sliding metrics window, in reports per broker.
    pub window: usize,
    /// Evaluation ticks to wait before the first rebalancing decision,
    /// so the window holds real measurements instead of startup zeros.
    pub warmup_ticks: u64,
    /// How long plan-delta installs are re-published after a migration,
    /// refreshing the sidecars' forwarding TTL across the window.
    pub install_refresh: Duration,
    /// Virtual identifiers per server on the fallback ring. Must match
    /// the routers' [`RouterConfig::vnodes`](crate::RouterConfig).
    pub vnodes: u32,
    /// Tuning for the balancer's own broker connections.
    pub client: ClientConfig,
    /// The [`LoadReporter`] cadence the balancer expects. Together with
    /// [`Self::suspect_after`] this defines the failure detector: a
    /// broker whose last `DMLLA1` report is older than
    /// `suspect_after × report_interval` becomes **suspect**.
    pub report_interval: Duration,
    /// Missed report intervals before a broker becomes suspect (K in
    /// the kill-to-recovery SLO `K·report_interval + probe_timeout`).
    pub suspect_after: u32,
    /// Timeout of the confirmation probe (a bare TCP connect to the
    /// suspect). A suspect whose probe *succeeds* stays suspect — its
    /// reporter is wedged but the broker serves, and failing over a
    /// serving broker would split routing. Only a failed probe declares
    /// death.
    pub probe_timeout: Duration,
    /// ε of the bounded-load rule shared by the emergency replan and
    /// the placement pass: a server is skipped (spilling the channel to
    /// the next ring node) once its projected load exceeds `(1+ε)×` the
    /// projected mean.
    pub failover_epsilon: f64,
    /// Enables the proactive bounded-load placement pass: each
    /// evaluation, channels observed in `DMLLA1` reports that have no
    /// plan entry and whose ring home violates the `(1+ε)×`-mean cap
    /// get bounded-load homes installed *before* they trip the reactive
    /// high-load path. Disable to measure the reactive baseline.
    pub placement_pass: bool,
    /// Evaluation ticks the *reactive* stages (Algorithms 1/2, low-load
    /// drain) hold off after any plan install. A migration's handoff
    /// window double-counts egress (old and new broker both forward),
    /// so the reports right after an install overstate load; acting on
    /// them triggers follow-on migrations that were never needed. The
    /// placement pass still runs every tick — newly observed channels
    /// are placed from their own (clean) per-channel bytes.
    pub settle_ticks: u64,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            tuning: Tuning::default(),
            capacity_floor: 1_000_000.0,
            tick: Duration::from_secs(1),
            window: 3,
            warmup_ticks: 3,
            install_refresh: Duration::from_secs(3),
            vnodes: DEFAULT_VNODES,
            client: ClientConfig::default(),
            report_interval: Duration::from_secs(1),
            suspect_after: 3,
            probe_timeout: Duration::from_millis(500),
            failover_epsilon: 0.25,
            placement_pass: true,
            settle_ticks: 2,
        }
    }
}

/// Counters and gauges describing a [`LiveLoadBalancer`]'s activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LiveBalancerStats {
    /// Broker load reports ingested.
    pub reports_received: u64,
    /// Plans installed (each bumps `plan_version`).
    pub plans_installed: u64,
    /// Evaluations where Algorithm 2 migrated channels off an
    /// overloaded broker.
    pub high_load_rebalances: u64,
    /// Evaluations where the low-load drain released a broker.
    pub low_load_drains: u64,
    /// Evaluations where Algorithm 1 changed a channel's replication.
    pub channel_level_rebalances: u64,
    /// Channels pinned by the proactive bounded-load placement pass
    /// (cap-violating ring homes re-homed before the reactive path).
    pub placement_installs: u64,
    /// Channels whose mapping was changed by the reactive stages
    /// (Algorithm 1 replication, Algorithm 2 migration, low-load
    /// drain) — the per-channel cost the placement pass exists to
    /// avoid, where one evaluation event can move many channels.
    pub reactive_migrations: u64,
    /// Brokers currently active (not drained).
    pub active_brokers: usize,
    /// Version of the most recently installed plan (0 = bootstrap).
    pub plan_version: u64,
    /// Windowed load ratio per broker directory index, for brokers that
    /// have reported.
    pub load_ratios: Vec<(usize, f64)>,
    /// Brokers currently suspect (missed reports, but the confirmation
    /// probe still connects — alive, reporter wedged).
    pub suspects: Vec<usize>,
    /// Brokers currently quarantined (declared dead; skipped by plans
    /// until they re-report).
    pub quarantined: Vec<usize>,
    /// Whole-broker deaths declared so far.
    pub deaths_declared: u64,
    /// Emergency replans executed (one per death with survivors).
    pub emergency_replans: u64,
    /// Quarantined brokers re-admitted after they re-reported.
    pub brokers_recovered: u64,
    /// Summary of the most recent emergency replan.
    pub last_replan: Option<ReplanSummary>,
}

/// What the most recent emergency replan did, for observability and for
/// asserting the bounded-load invariant in tests: immediately after a
/// replan, no survivor's projected load ratio exceeds `cap_ratio`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanSummary {
    /// Directory index of the broker whose death triggered the replan.
    pub dead: usize,
    /// Channels reassigned off the corpse.
    pub channels_moved: usize,
    /// The bounded-load cap as a load ratio: `(1+ε)×` the projected
    /// post-failover mean LR. Infinite when the replan ran before any
    /// load was measured (a cold start is uncapped: the walk then
    /// degenerates to plain consistent hashing, which every observer
    /// agrees on).
    pub cap_ratio: f64,
    /// Highest projected survivor LR after the reassignment.
    pub max_survivor_lr: f64,
    /// Mean projected survivor LR after the reassignment.
    pub mean_survivor_lr: f64,
}

/// Publishes one broker's load reports on its `__dmc.lla.*` channel at
/// a fixed interval (see module docs).
pub struct LoadReporter {
    running: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl LoadReporter {
    /// Starts reporting for the broker with directory index `broker`,
    /// reachable at `addr`, harvesting through `handle` every
    /// `interval`.
    pub fn start(
        handle: BrokerLoadHandle,
        broker: usize,
        addr: SocketAddr,
        interval: Duration,
        client: ClientConfig,
    ) -> LoadReporter {
        let running = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&running);
        let thread = std::thread::spawn(move || {
            let conn = TcpPubSubClient::connect_addr(addr, client);
            let channel = lla_channel(broker);
            let mut next = Instant::now() + interval;
            while flag.load(Ordering::SeqCst) {
                // A reporter must observe its broker's shutdown and stop
                // cleanly: publishing into a closed listener would spin
                // the connection's reconnect loop forever. Sleep in
                // short slices so both exits stay responsive.
                if handle.is_shutdown() {
                    return;
                }
                let now = Instant::now();
                if now < next {
                    std::thread::sleep((next - now).min(Duration::from_millis(10)));
                    continue;
                }
                next = now + interval;
                let report = handle.report();
                conn.publish(&channel, &encode_report(&report));
            }
        });
        LoadReporter {
            running,
            thread: Some(thread),
        }
    }

    /// Whether the reporter thread has exited — true after
    /// [`shutdown`](Self::shutdown), and also on its own once the
    /// reporter observed its broker shut down.
    pub fn is_finished(&self) -> bool {
        self.thread.as_ref().is_none_or(|t| t.is_finished())
    }

    /// Stops the reporter thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LoadReporter {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop();
        }
    }
}

impl std::fmt::Debug for LoadReporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadReporter").finish_non_exhaustive()
    }
}

/// The live balancing service (see module docs).
pub struct LiveLoadBalancer {
    running: Arc<AtomicBool>,
    stats: Arc<Mutex<LiveBalancerStats>>,
    thread: Option<JoinHandle<()>>,
}

impl LiveLoadBalancer {
    /// Starts balancing the brokers in `directory` (index `i` ↔
    /// [`ServerId::from_index`]`(i)`, same convention as routers and
    /// sidecars).
    ///
    /// # Panics
    ///
    /// Panics if `directory` is empty.
    pub fn start(directory: Vec<SocketAddr>, cfg: BalancerConfig) -> LiveLoadBalancer {
        assert!(!directory.is_empty(), "directory needs at least one broker");
        let running = Arc::new(AtomicBool::new(true));
        let stats = Arc::new(Mutex::new(LiveBalancerStats {
            active_brokers: directory.len(),
            ..LiveBalancerStats::default()
        }));
        let flag = Arc::clone(&running);
        let stats_out = Arc::clone(&stats);
        let thread = std::thread::spawn(move || Engine::new(directory, cfg, flag, stats_out).run());
        LiveLoadBalancer {
            running,
            stats,
            thread: Some(thread),
        }
    }

    /// Counters and gauges so far.
    pub fn stats(&self) -> LiveBalancerStats {
        self.stats.lock().clone()
    }

    /// Stops the balancer. Brokers keep serving under the last
    /// installed plan.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LiveLoadBalancer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop();
        }
    }
}

impl std::fmt::Debug for LiveLoadBalancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveLoadBalancer").finish_non_exhaustive()
    }
}

/// A plan delta awaiting its refresh window: re-published every tick
/// until `installed_at + install_refresh`, so sidecar forwarding TTLs
/// stay fresh for the whole reconfiguration window.
struct PendingInstall {
    installed_at: Instant,
    frame: InstallFrame,
    targets: Vec<usize>,
}

/// The balancer's worker thread state.
struct Engine {
    directory: Vec<SocketAddr>,
    cfg: BalancerConfig,
    running: Arc<AtomicBool>,
    stats: Arc<Mutex<LiveBalancerStats>>,
    /// One connection per broker: subscribed to its report channel,
    /// used to publish installs to its sidecar.
    clients: Vec<TcpPubSubClient>,
    ring: Ring,
    plan: Plan,
    next_plan_id: u64,
    /// Brokers currently in the balancing pool; a low-load drain parks
    /// a broker here without touching the directory.
    active: Vec<ServerId>,
    store: MetricsStore,
    /// One shared estimator observing the per-tick *maximum* egress
    /// across brokers: per-broker estimators would mix idle brokers'
    /// zeros into the sustained-minimum window and never learn.
    capacity: CapacityEstimator,
    /// Channel names by id — reports carry names, plans carry ids.
    names: HashMap<ChannelId, String>,
    /// Brokers that have reported at least once (evaluation gate).
    reported: HashSet<usize>,
    ticks: u64,
    pending_installs: Vec<PendingInstall>,
    /// When each broker's most recent report arrived (engine start
    /// counts as a report, so a never-reporting broker becomes suspect
    /// after the normal K intervals instead of instantly).
    last_report: Vec<Instant>,
    /// Death count per broker; bumped on every death declaration and
    /// carried on the wire so receivers dedup death handling.
    incarnations: Vec<u64>,
    /// Brokers declared dead, by directory index → incarnation. A
    /// quarantined broker is skipped by plans and pool re-admission
    /// until a fresh report proves it back.
    quarantined: BTreeMap<usize, u64>,
    /// Brokers past the missed-report threshold whose probe still
    /// succeeds.
    suspects: HashSet<usize>,
    /// Channels pinned by the placement pass (always `Single` entries),
    /// keyed to the evaluation tick that placed them. Each channel is
    /// placed at most once: after that it has a plan entry and its
    /// broker's load drift belongs to the reactive algorithms.
    /// (Keeping these entries mobile and re-judging them against every
    /// tick's fluctuating measurements was tried — it churns plans
    /// continuously as each install's handoff transient re-triggers
    /// the next move.)
    placed: HashMap<ChannelId, u64>,
    /// Tick of the most recent plan install; the reactive stages hold
    /// off for [`BalancerConfig::settle_ticks`] after it so handoff
    /// double-egress transients cannot trigger follow-on migrations.
    last_install_tick: Option<u64>,
}

impl Engine {
    fn new(
        directory: Vec<SocketAddr>,
        cfg: BalancerConfig,
        running: Arc<AtomicBool>,
        stats: Arc<Mutex<LiveBalancerStats>>,
    ) -> Engine {
        let servers: Vec<ServerId> = (0..directory.len()).map(ServerId::from_index).collect();
        let ring = Ring::new(&servers, cfg.vnodes);
        let clients: Vec<TcpPubSubClient> = directory
            .iter()
            .enumerate()
            .map(|(idx, &addr)| {
                let client = TcpPubSubClient::connect_addr(addr, cfg.client.clone());
                client.subscribe(&lla_channel(idx));
                client
            })
            .collect();
        Engine {
            store: MetricsStore::new(cfg.window),
            capacity: CapacityEstimator::new(cfg.capacity_floor),
            last_report: vec![Instant::now(); directory.len()],
            incarnations: vec![0; directory.len()],
            quarantined: BTreeMap::new(),
            suspects: HashSet::new(),
            placed: HashMap::new(),
            last_install_tick: None,
            directory,
            running,
            stats,
            clients,
            ring,
            plan: Plan::bootstrap(),
            next_plan_id: 1,
            active: servers,
            names: HashMap::new(),
            reported: HashSet::new(),
            ticks: 0,
            pending_installs: Vec::new(),
            cfg,
        }
    }

    fn run(mut self) {
        while self.running.load(Ordering::SeqCst) {
            std::thread::sleep(self.cfg.tick);
            self.ingest();
            self.ticks += 1;
            self.detect_failures();
            // The evaluation gate counts only live brokers: a dead one
            // can never report again, and waiting for it would deadlock
            // balancing exactly when it is needed most.
            let live = self.directory.len() - self.quarantined.len();
            if live > 0 && self.reported.len() >= live && self.ticks >= self.cfg.warmup_ticks {
                self.evaluate();
            }
            self.refresh_installs();
            self.publish_stats();
        }
    }

    /// The quarantined brokers as [`ServerId`]s — the exclusion set for
    /// ring fallbacks ([`Plan::resolve_excluding`]) and migration gates.
    fn quarantined_servers(&self) -> Vec<ServerId> {
        self.quarantined
            .keys()
            .map(|&idx| ServerId::from_index(idx))
            .collect()
    }

    /// The current quarantine list in wire form (sorted by index, so
    /// every frame encodes it identically).
    fn quarantine_list(&self) -> Vec<Quarantine> {
        self.quarantined
            .iter()
            .map(|(&broker, &incarnation)| Quarantine {
                broker,
                incarnation,
            })
            .collect()
    }

    /// Drains every broker connection, converting `DMLLA1` payloads to
    /// [`LlaReport`]s for the metrics window and feeding the capacity
    /// estimator the tick's maximum observed egress.
    fn ingest(&mut self) {
        let mut max_egress: Option<f64> = None;
        for (idx, client) in self.clients.iter().enumerate() {
            while client.try_event().is_some() {}
            while let Some(msg) = client.try_message() {
                if msg.channel != lla_channel(idx) {
                    continue;
                }
                let Some(report) = decode_report(&msg.payload) else {
                    continue;
                };
                max_egress = Some(max_egress.unwrap_or(0.0).max(report.egress_bytes as f64));
                let mut channels = Vec::with_capacity(report.channels.len());
                for (name, tick) in report.channels {
                    // The control plane's own traffic (reports, installs,
                    // MOVED frames) must not influence balancing.
                    if is_control_channel(&name) {
                        continue;
                    }
                    let id = channel_id_of(&name);
                    self.names.entry(id).or_insert(name);
                    channels.push((id, tick));
                }
                self.store.record(LlaReport {
                    server: ServerId::from_index(idx),
                    tick: report.tick,
                    measured_egress_bytes: report.egress_bytes,
                    capacity_bytes: self.capacity.capacity(),
                    cpu_busy_micros: 0,
                    channels,
                });
                self.reported.insert(idx);
                self.last_report[idx] = Instant::now();
                self.suspects.remove(&idx);
                self.stats.lock().reports_received += 1;
                if self.quarantined.remove(&idx).is_some() {
                    // A fresh report lifts the quarantine: the broker is
                    // back (new incarnation, fresh sequence spaces) and
                    // rejoins the pool as free capacity.
                    let s = ServerId::from_index(idx);
                    if !self.active.contains(&s) {
                        self.active.push(s);
                        self.active.sort();
                    }
                    self.stats.lock().brokers_recovered += 1;
                }
            }
        }
        if let Some(max) = max_egress {
            self.capacity.observe(max);
        }
    }

    /// The suspect → probe → dead state machine. A broker is suspect
    /// once its last report is older than `suspect_after ×
    /// report_interval`; a suspect is probed every tick with a bare TCP
    /// connect. Probe success keeps it suspect (broker alive, reporter
    /// wedged — failing over a serving broker would split routing);
    /// probe failure declares death and triggers the emergency replan.
    fn detect_failures(&mut self) {
        let threshold = self.cfg.report_interval * self.cfg.suspect_after.max(1);
        let mut deaths = Vec::new();
        for idx in 0..self.directory.len() {
            if self.quarantined.contains_key(&idx) {
                continue;
            }
            if self.last_report[idx].elapsed() < threshold {
                self.suspects.remove(&idx);
                continue;
            }
            self.suspects.insert(idx);
            if TcpStream::connect_timeout(&self.directory[idx], self.cfg.probe_timeout).is_err() {
                deaths.push(idx);
            }
        }
        for idx in deaths {
            self.declare_dead(idx);
        }
    }

    /// Declares broker `idx` dead: bump its incarnation, quarantine it,
    /// replan its channels onto survivors, then prune every piece of
    /// state that would otherwise keep the corpse in the math.
    fn declare_dead(&mut self, idx: usize) {
        self.suspects.remove(&idx);
        self.reported.remove(&idx);
        self.incarnations[idx] += 1;
        self.quarantined.insert(idx, self.incarnations[idx]);
        self.stats.lock().deaths_declared += 1;
        // Replan *before* forgetting the corpse's metrics: they are the
        // only estimate of how much load each of its channels carries.
        self.emergency_replan(idx);
        let dead = ServerId::from_index(idx);
        self.store.forget(dead);
        self.reported.remove(&idx);
        self.active.retain(|&s| s != dead);
        // The corpse's final egress samples must not complete a
        // "sustained" window and skew the capacity estimate the
        // survivors' load ratios are measured against.
        self.capacity.forget_window();
    }

    /// Reassigns every channel homed on the dead broker to survivors
    /// chosen by a load-capped ring walk: walk the ring from the
    /// channel's hash point and take the first survivor whose projected
    /// load stays within `(1+ε)×` the post-failover mean (*Consistent
    /// Hashing with Bounded Loads*); when a survivor is over the cap
    /// the channel spills to the next ring node. The resulting installs
    /// go to **every** survivor (not just old/new members): carrying
    /// the quarantine list, they teach all surviving sidecars where the
    /// corpse's channels now live, so stray publications are corrected
    /// wherever they land.
    fn emergency_replan(&mut self, dead_idx: usize) {
        let dead = ServerId::from_index(dead_idx);
        let survivors: Vec<ServerId> = (0..self.directory.len())
            .filter(|i| !self.quarantined.contains_key(i))
            .map(ServerId::from_index)
            .collect();
        if survivors.is_empty() {
            return; // nobody left to replan onto
        }
        // Every survivor absorbs failover load, so all join the pool.
        for &s in &survivors {
            if !self.active.contains(&s) {
                self.active.push(s);
            }
        }
        self.active.sort();

        let capacity = self.capacity.capacity().max(1.0);
        // Channels a router would currently send to the corpse: the
        // effective home honors *earlier* quarantines (routers already
        // route around those), so exclude every corpse but this one.
        // Heaviest first: first-fit decreasing packs tightest under the
        // cap; ties by id for determinism.
        let prior: Vec<ServerId> = self
            .quarantined_servers()
            .into_iter()
            .filter(|&s| s != dead)
            .collect();
        let mut homeless: Vec<(ChannelId, f64)> = self
            .names
            .keys()
            .filter(|&&id| {
                self.plan
                    .resolve_excluding(id, &self.ring, &prior)
                    .servers()
                    .contains(&dead)
            })
            .map(|&id| (id, self.store.channel_bytes_on(dead, id)))
            .collect();
        homeless.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

        // The shared bounded-load placer: survivors seeded from the
        // live LLA view, the corpse's load counted as pending so the
        // cap reflects the post-failover system. No cap floor here —
        // with nothing measured anywhere the placer runs uncapped and
        // the walk degenerates to plain consistent hashing.
        let loads: Vec<(ServerId, f64)> = survivors
            .iter()
            .map(|&s| (s, self.store.egress_bytes_per_tick(s).unwrap_or(0.0)))
            .collect();
        let pending: f64 = homeless.iter().map(|&(_, b)| b).sum();
        let mut placer = BoundedPlacer::new(&loads, self.cfg.failover_epsilon, pending, 0.0);

        let mut candidate = self.plan.clone();
        for &(id, bytes) in &homeless {
            let old = self.plan.resolve_excluding(id, &self.ring, &prior);
            let keep: Vec<ServerId> = old
                .servers()
                .iter()
                .copied()
                .filter(|&s| s != dead && placer.is_eligible(s))
                .collect();
            let mut members = keep.clone();
            if let Some(target) = placer.place(&self.ring, id, bytes, &keep) {
                members.push(target);
            }
            let mapping = match (&old, members.len()) {
                (_, 0) => continue, // unreachable: survivors is non-empty
                (ChannelMapping::AllSubscribers(_), n) if n >= 2 => {
                    ChannelMapping::AllSubscribers(members)
                }
                (ChannelMapping::AllPublishers(_), n) if n >= 2 => {
                    ChannelMapping::AllPublishers(members)
                }
                _ => ChannelMapping::Single(members[0]),
            };
            candidate.set(id, mapping);
        }

        let changes = self.plan.diff_excluding(&candidate, &self.ring, &prior);
        let n = survivors.len() as f64;
        let mean_lr = placer.loads().map(|(_, b)| b).sum::<f64>() / n / capacity;
        let max_lr = placer.loads().fold(0.0f64, |m, (_, b)| m.max(b / capacity));
        {
            let mut stats = self.stats.lock();
            stats.emergency_replans += 1;
            stats.last_replan = Some(ReplanSummary {
                dead: dead_idx,
                channels_moved: changes.len(),
                cap_ratio: placer.cap_bytes() / capacity,
                max_survivor_lr: max_lr,
                mean_survivor_lr: mean_lr,
            });
        }
        if changes.is_empty() {
            return;
        }
        let plan_id = PlanId(self.next_plan_id);
        self.next_plan_id += 1;
        candidate.set_id(plan_id);
        let quarantine = self.quarantine_list();
        let targets: Vec<usize> = survivors.iter().map(|s| s.index()).collect();
        let now = Instant::now();
        for change in changes {
            let Some(name) = self.names.get(&change.channel) else {
                continue;
            };
            let frame = InstallFrame {
                plan: plan_id,
                channel: name.clone(),
                old: change.old,
                new: change.new,
                quarantine: quarantine.clone(),
            };
            self.send_install(&frame, &targets);
            self.pending_installs.push(PendingInstall {
                installed_at: now,
                frame,
                targets: targets.clone(),
            });
        }
        self.plan = candidate;
        self.last_install_tick = Some(self.ticks);
        self.stats.lock().plans_installed += 1;
    }

    /// One balancing evaluation, mirroring the simulator's
    /// `evaluate_dynamoth`: the proactive bounded-load placement pass,
    /// then Algorithm 1 (channel-level replication), then Algorithm 2
    /// (high-load migration), then — only when the system is otherwise
    /// stable — the low-load drain.
    fn evaluate(&mut self) {
        let capacity = self.capacity.capacity();
        let exclude = self.quarantined_servers();
        let mut view = LoadView::from_store(&self.store, &self.active, capacity);
        let mut aggregates: Vec<(ChannelId, ChannelAggregate)> = self
            .store
            .channel_aggregates(|c| self.plan.resolve_excluding(c, &self.ring, &exclude))
            .into_iter()
            .collect();
        aggregates.sort_by_key(|&(c, _)| c); // deterministic decisions

        let mut candidate = self.plan.clone();
        let placement_moves = if self.cfg.placement_pass {
            self.placement_pass(&mut candidate, &mut view, capacity, &exclude)
        } else {
            0
        };
        let pre_reactive = candidate.clone();
        // Post-install settle: the reports right after a migration
        // double-count the handoff egress, so acting on them manufactures
        // follow-on migrations. Placement (above) is exempt — it judges
        // newly observed channels by their own per-channel bytes.
        let settling = self
            .last_install_tick
            .is_some_and(|t| self.ticks.saturating_sub(t) < self.cfg.settle_ticks);
        let mut cl_changed = false;
        let mut high_changed = false;
        let mut servers_wanted = 0usize;
        let mut drained = None;
        if !settling {
            cl_changed = channel_level::apply(
                &mut candidate,
                &self.ring,
                &aggregates,
                &mut view,
                &self.active,
                self.cfg.tuning,
                &exclude,
            );
            let high =
                high_load::rebalance(&candidate, &mut view, &self.ring, self.cfg.tuning, &exclude);
            candidate = high.plan;
            high_changed = high.changed;
            servers_wanted = high.servers_wanted;
            if !high_changed && !cl_changed && servers_wanted == 0 && self.active.len() > 1 {
                if let Some(out) = low_load::rebalance(
                    &candidate,
                    &mut view,
                    &self.ring,
                    self.cfg.tuning,
                    &exclude,
                ) {
                    candidate = out.plan;
                    drained = Some(out.release);
                }
            }
        }

        let reactive_moves = pre_reactive
            .diff_excluding(&candidate, &self.ring, &exclude)
            .len() as u64;
        {
            let mut stats = self.stats.lock();
            stats.placement_installs += placement_moves;
            stats.reactive_migrations += reactive_moves;
            if cl_changed {
                stats.channel_level_rebalances += 1;
            }
            if high_changed {
                stats.high_load_rebalances += 1;
            }
            if drained.is_some() {
                stats.low_load_drains += 1;
            }
        }

        if servers_wanted > 0 {
            // The pool cannot absorb the load: re-admit parked brokers
            // (the TCP tier cannot rent new machines, but drained ones
            // are free capacity). Quarantined brokers stay out — a
            // corpse is not capacity.
            for idx in 0..self.directory.len() {
                if self.quarantined.contains_key(&idx) {
                    continue;
                }
                let s = ServerId::from_index(idx);
                if !self.active.contains(&s) {
                    self.active.push(s);
                }
            }
            self.active.sort();
        } else if let Some(victim) = drained {
            self.active.retain(|&s| s != victim);
            self.store.forget(victim);
            self.reported.remove(&victim.index());
        }
        self.readmit_loaded_parked_brokers();

        // Exclusion-aware diff: for a previously unmapped channel whose
        // plain home is quarantined, `old` must name the survivor that
        // actually serves it, or the install never reaches the sidecar
        // that has to announce the switch.
        let changes = self.plan.diff_excluding(&candidate, &self.ring, &exclude);
        if changes.is_empty() {
            return;
        }
        let plan_id = PlanId(self.next_plan_id);
        self.next_plan_id += 1;
        candidate.set_id(plan_id);
        let quarantine = self.quarantine_list();
        let now = Instant::now();
        for change in changes {
            let Some(name) = self.names.get(&change.channel) else {
                continue; // never observed on the wire; nothing to tell
            };
            let frame = InstallFrame {
                plan: plan_id,
                channel: name.clone(),
                old: change.old,
                new: change.new,
                quarantine: quarantine.clone(),
            };
            let mut targets: Vec<usize> = frame
                .old
                .servers()
                .iter()
                .chain(frame.new.servers())
                .map(|s| s.index())
                .collect();
            targets.sort_unstable();
            targets.dedup();
            // A corpse in `old` (a placed entry being moved off a
            // quarantined broker) gets no install: it cannot ack, and
            // the sidecar quarantine list already covers forwarding.
            targets.retain(|idx| !self.quarantined.contains_key(idx));
            self.send_install(&frame, &targets);
            self.pending_installs.push(PendingInstall {
                installed_at: now,
                frame,
                targets,
            });
        }
        self.plan = candidate;
        self.last_install_tick = Some(self.ticks);
        self.stats.lock().plans_installed += 1;
    }

    /// Proactive bounded-load placement (consistent hashing with
    /// bounded loads, Mirrokni et al.): channels the plan does not
    /// mention whose plain-ring home would blow the `(1+ε)·mean` cap
    /// get an explicit bounded-load home *before* the reactive
    /// high-load path has to fire. Balls-and-bins hysteresis: an
    /// unmapped channel whose ring home is under the cap is left
    /// untouched (no plan entry, no install), so only cap-violating
    /// channels ever move, and each channel is placed at most once
    /// (`self.placed`) — afterwards its broker's load drift belongs to
    /// the reactive algorithms, which keeps broker rent/release churn
    /// from cascading into mass migrations.
    ///
    /// Returns the number of channels rehomed into `candidate`; `view`
    /// is updated alongside so the downstream reactive algorithms see
    /// the post-placement loads instead of double-moving the same
    /// channels.
    fn placement_pass(
        &mut self,
        candidate: &mut Plan,
        view: &mut LoadView,
        capacity: f64,
        exclude: &[ServerId],
    ) -> u64 {
        if self.active.len() < 2 {
            return 0;
        }
        let loads: Vec<(ServerId, f64)> = self
            .active
            .iter()
            .map(|&s| (s, self.store.egress_bytes_per_tick(s).unwrap_or(0.0)))
            .collect();
        // Floor the cap at the reactive safe line: below it the plain
        // ring is fine and the pass stays quiet rather than churning
        // plans over trivial imbalance.
        let cap_floor = self.cfg.tuning.lr_safe * capacity;
        let mut placer = BoundedPlacer::new(&loads, self.cfg.failover_epsilon, 0.0, cap_floor);

        // Work list: unmapped channels at their effective ring home.
        // Every mapped channel — including our own past placements —
        // belongs to the reactive algorithms. Heaviest first: first-fit
        // decreasing packs tightest under the cap; ties by id for
        // determinism.
        let mut work: Vec<(ChannelId, ServerId, f64)> = Vec::new();
        for &id in self.names.keys() {
            let home = match candidate.mapping(id) {
                None => self
                    .ring
                    .server_for_excluding(id, exclude)
                    .unwrap_or_else(|| self.ring.server_for(id)),
                Some(_) => continue,
            };
            // Homes on parked-but-healthy brokers are the readmit
            // path's business; hijacking them here would fight the
            // low-load drain.
            if !placer.is_eligible(home) && !exclude.contains(&home) {
                continue;
            }
            work.push((id, home, self.store.channel_bytes_on(home, id)));
        }
        work.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));

        let mut moved = 0u64;
        for (id, home, bytes) in work {
            // A channel too fat to fit under the cap on *any* broker
            // cannot be packed, only shifted. Shift it while that
            // strictly lowers its broker's projected load (first-fit
            // decreasing still converges), but once the least-loaded
            // alternative would end up no better than where it sits,
            // leave it alone — further moves just ping-pong the hot
            // spot, and replication (Algorithm 1) is the real fix.
            if placer.is_eligible(home) {
                let cap = placer.cap_bytes();
                let home_p = placer.projected(home).unwrap_or(0.0);
                let (fits, improves) = placer
                    .loads()
                    .filter(|&(s, _)| s != home)
                    .fold((false, false), |(f, i), (_, p)| {
                        (f || p + bytes <= cap, i || p + bytes < home_p)
                    });
                if !fits && !improves {
                    continue;
                }
            }
            let Some(target) = placer.rehome(&self.ring, id, bytes, Some(home)) else {
                continue;
            };
            if target == home {
                continue;
            }
            candidate.set(id, ChannelMapping::Single(target));
            self.placed.insert(id, self.ticks);
            if placer.is_eligible(home) {
                view.migrate(id, home, target);
            }
            moved += 1;
        }
        moved
    }

    /// A drained broker is invisible to the plan, but the ring still
    /// homes *new* channels on it — if such a channel heats up, the
    /// broker must rejoin the pool or its load is never balanced.
    fn readmit_loaded_parked_brokers(&mut self) {
        let threshold = self.cfg.tuning.lr_low * self.capacity.capacity();
        let mut changed = false;
        for idx in 0..self.directory.len() {
            if self.quarantined.contains_key(&idx) {
                continue;
            }
            let s = ServerId::from_index(idx);
            if self.active.contains(&s) {
                continue;
            }
            if self.store.egress_bytes_per_tick(s).unwrap_or(0.0) >= threshold {
                self.active.push(s);
                changed = true;
            }
        }
        if changed {
            self.active.sort();
        }
    }

    fn send_install(&self, frame: &InstallFrame, targets: &[usize]) {
        let payload = frame.encode();
        for &idx in targets {
            if let Some(client) = self.clients.get(idx) {
                client.publish(&install_channel(idx), &payload);
            }
        }
    }

    /// Re-publishes young installs so the sidecars' forwarding TTLs stay
    /// refreshed across the reconfiguration window (the install path is
    /// idempotent per (channel, plan)).
    fn refresh_installs(&mut self) {
        let refresh = self.cfg.install_refresh;
        let now = Instant::now();
        self.pending_installs
            .retain(|p| now.duration_since(p.installed_at) < refresh);
        for p in &self.pending_installs {
            self.send_install(&p.frame, &p.targets);
        }
    }

    fn publish_stats(&self) {
        let mut load_ratios: Vec<(usize, f64)> = (0..self.directory.len())
            .filter_map(|idx| {
                self.store
                    .load_ratio(ServerId::from_index(idx))
                    .map(|lr| (idx, lr))
            })
            .collect();
        load_ratios.sort_by_key(|&(idx, _)| idx);
        let mut suspects: Vec<usize> = self.suspects.iter().copied().collect();
        suspects.sort_unstable();
        let mut stats = self.stats.lock();
        stats.active_brokers = self.active.len();
        stats.plan_version = self.plan.id().0;
        stats.load_ratios = load_ratios;
        stats.suspects = suspects;
        stats.quarantined = self.quarantined.keys().copied().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one broker")]
    fn empty_directory_panics() {
        let _ = LiveLoadBalancer::start(Vec::new(), BalancerConfig::default());
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = BalancerConfig::default();
        assert!(cfg.window >= 1);
        assert!(cfg.warmup_ticks >= 1);
        assert!(cfg.capacity_floor > 0.0);
        assert!(cfg.install_refresh > cfg.tick);
        assert!(cfg.suspect_after >= 1);
        assert!(cfg.probe_timeout > Duration::ZERO);
        assert!(cfg.failover_epsilon >= 0.0);
        // The detector must tolerate at least one report interval of
        // jitter before suspecting anyone.
        assert!(cfg.report_interval * cfg.suspect_after >= cfg.report_interval);
    }
}
