//! The live load balancer: Dynamoth's control loop (§III) closed over
//! real TCP brokers.
//!
//! Two services make the loop:
//!
//! - A [`LoadReporter`] runs next to each broker. It periodically
//!   harvests the broker's [`BrokerLoadAnalyzer`](crate::load) deltas
//!   and publishes them — as ordinary pub/sub traffic on the broker's
//!   own `__dmc.lla.*` channel — so the balancer needs no side channel
//!   and the broker stays protocol-unmodified, exactly like the paper's
//!   LLA-over-Redis design.
//! - One [`LiveLoadBalancer`] subscribes to every broker's report
//!   channel, feeds the reports into the same [`MetricsStore`] /
//!   [`LoadView`] / Algorithm 1 / Algorithm 2 / low-load-drain pipeline
//!   the simulator uses, and turns resulting plan deltas into
//!   [`InstallFrame`]s published to the involved brokers' dispatcher
//!   sidecars. The sidecars then run the ordinary lazy-reconfiguration
//!   window (`<switch>`, `MOVED`, bidirectional forwarding), so a hot
//!   channel migrates with no client involvement and exactly-once
//!   delivery intact.
//!
//! The balancer is deliberately stateless towards the brokers: if it
//! dies, traffic keeps flowing under the last installed plan — the data
//! plane never depends on the control plane being alive.

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::balance::estimator::LoadView;
use crate::balance::metrics::{ChannelAggregate, LlaReport, MetricsStore};
use crate::balance::{channel_level, high_load, low_load, CapacityEstimator, Tuning};
use crate::broker::BrokerLoadHandle;
use crate::channel::Channel as ChannelId;
use crate::client::{ClientConfig, TcpPubSubClient};
use crate::control::{
    channel_id_of, decode_report, encode_report, install_channel, is_control_channel, lla_channel,
    InstallFrame,
};
use crate::hashing::{Ring, DEFAULT_VNODES};
use crate::ids::{PlanId, ServerId};
use crate::plan::Plan;

/// Tuning knobs of a [`LiveLoadBalancer`].
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Thresholds for Algorithms 1/2 and the low-load drain.
    pub tuning: Tuning,
    /// Provisioned broker capacity in bytes per report interval — the
    /// floor of the observed-capacity estimate (`T_i`).
    pub capacity_floor: f64,
    /// Evaluation cadence. Keep close to the [`LoadReporter`] interval:
    /// the metrics window counts reports, not wall time.
    pub tick: Duration,
    /// Sliding metrics window, in reports per broker.
    pub window: usize,
    /// Evaluation ticks to wait before the first rebalancing decision,
    /// so the window holds real measurements instead of startup zeros.
    pub warmup_ticks: u64,
    /// How long plan-delta installs are re-published after a migration,
    /// refreshing the sidecars' forwarding TTL across the window.
    pub install_refresh: Duration,
    /// Virtual identifiers per server on the fallback ring. Must match
    /// the routers' [`RouterConfig::vnodes`](crate::RouterConfig).
    pub vnodes: u32,
    /// Tuning for the balancer's own broker connections.
    pub client: ClientConfig,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            tuning: Tuning::default(),
            capacity_floor: 1_000_000.0,
            tick: Duration::from_secs(1),
            window: 3,
            warmup_ticks: 3,
            install_refresh: Duration::from_secs(3),
            vnodes: DEFAULT_VNODES,
            client: ClientConfig::default(),
        }
    }
}

/// Counters and gauges describing a [`LiveLoadBalancer`]'s activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LiveBalancerStats {
    /// Broker load reports ingested.
    pub reports_received: u64,
    /// Plans installed (each bumps `plan_version`).
    pub plans_installed: u64,
    /// Evaluations where Algorithm 2 migrated channels off an
    /// overloaded broker.
    pub high_load_rebalances: u64,
    /// Evaluations where the low-load drain released a broker.
    pub low_load_drains: u64,
    /// Evaluations where Algorithm 1 changed a channel's replication.
    pub channel_level_rebalances: u64,
    /// Brokers currently active (not drained).
    pub active_brokers: usize,
    /// Version of the most recently installed plan (0 = bootstrap).
    pub plan_version: u64,
    /// Windowed load ratio per broker directory index, for brokers that
    /// have reported.
    pub load_ratios: Vec<(usize, f64)>,
}

/// Publishes one broker's load reports on its `__dmc.lla.*` channel at
/// a fixed interval (see module docs).
pub struct LoadReporter {
    running: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl LoadReporter {
    /// Starts reporting for the broker with directory index `broker`,
    /// reachable at `addr`, harvesting through `handle` every
    /// `interval`.
    pub fn start(
        handle: BrokerLoadHandle,
        broker: usize,
        addr: SocketAddr,
        interval: Duration,
        client: ClientConfig,
    ) -> LoadReporter {
        let running = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&running);
        let thread = std::thread::spawn(move || {
            let conn = TcpPubSubClient::connect_addr(addr, client);
            let channel = lla_channel(broker);
            while flag.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                let report = handle.report();
                conn.publish(&channel, &encode_report(&report));
            }
        });
        LoadReporter {
            running,
            thread: Some(thread),
        }
    }

    /// Stops the reporter thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LoadReporter {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop();
        }
    }
}

impl std::fmt::Debug for LoadReporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadReporter").finish_non_exhaustive()
    }
}

/// The live balancing service (see module docs).
pub struct LiveLoadBalancer {
    running: Arc<AtomicBool>,
    stats: Arc<Mutex<LiveBalancerStats>>,
    thread: Option<JoinHandle<()>>,
}

impl LiveLoadBalancer {
    /// Starts balancing the brokers in `directory` (index `i` ↔
    /// [`ServerId::from_index`]`(i)`, same convention as routers and
    /// sidecars).
    ///
    /// # Panics
    ///
    /// Panics if `directory` is empty.
    pub fn start(directory: Vec<SocketAddr>, cfg: BalancerConfig) -> LiveLoadBalancer {
        assert!(!directory.is_empty(), "directory needs at least one broker");
        let running = Arc::new(AtomicBool::new(true));
        let stats = Arc::new(Mutex::new(LiveBalancerStats {
            active_brokers: directory.len(),
            ..LiveBalancerStats::default()
        }));
        let flag = Arc::clone(&running);
        let stats_out = Arc::clone(&stats);
        let thread = std::thread::spawn(move || Engine::new(directory, cfg, flag, stats_out).run());
        LiveLoadBalancer {
            running,
            stats,
            thread: Some(thread),
        }
    }

    /// Counters and gauges so far.
    pub fn stats(&self) -> LiveBalancerStats {
        self.stats.lock().clone()
    }

    /// Stops the balancer. Brokers keep serving under the last
    /// installed plan.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LiveLoadBalancer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop();
        }
    }
}

impl std::fmt::Debug for LiveLoadBalancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveLoadBalancer").finish_non_exhaustive()
    }
}

/// A plan delta awaiting its refresh window: re-published every tick
/// until `installed_at + install_refresh`, so sidecar forwarding TTLs
/// stay fresh for the whole reconfiguration window.
struct PendingInstall {
    installed_at: Instant,
    frame: InstallFrame,
    targets: Vec<usize>,
}

/// The balancer's worker thread state.
struct Engine {
    directory: Vec<SocketAddr>,
    cfg: BalancerConfig,
    running: Arc<AtomicBool>,
    stats: Arc<Mutex<LiveBalancerStats>>,
    /// One connection per broker: subscribed to its report channel,
    /// used to publish installs to its sidecar.
    clients: Vec<TcpPubSubClient>,
    ring: Ring,
    plan: Plan,
    next_plan_id: u64,
    /// Brokers currently in the balancing pool; a low-load drain parks
    /// a broker here without touching the directory.
    active: Vec<ServerId>,
    store: MetricsStore,
    /// One shared estimator observing the per-tick *maximum* egress
    /// across brokers: per-broker estimators would mix idle brokers'
    /// zeros into the sustained-minimum window and never learn.
    capacity: CapacityEstimator,
    /// Channel names by id — reports carry names, plans carry ids.
    names: HashMap<ChannelId, String>,
    /// Brokers that have reported at least once (evaluation gate).
    reported: HashSet<usize>,
    ticks: u64,
    pending_installs: Vec<PendingInstall>,
}

impl Engine {
    fn new(
        directory: Vec<SocketAddr>,
        cfg: BalancerConfig,
        running: Arc<AtomicBool>,
        stats: Arc<Mutex<LiveBalancerStats>>,
    ) -> Engine {
        let servers: Vec<ServerId> = (0..directory.len()).map(ServerId::from_index).collect();
        let ring = Ring::new(&servers, cfg.vnodes);
        let clients: Vec<TcpPubSubClient> = directory
            .iter()
            .enumerate()
            .map(|(idx, &addr)| {
                let client = TcpPubSubClient::connect_addr(addr, cfg.client.clone());
                client.subscribe(&lla_channel(idx));
                client
            })
            .collect();
        Engine {
            store: MetricsStore::new(cfg.window),
            capacity: CapacityEstimator::new(cfg.capacity_floor),
            directory,
            running,
            stats,
            clients,
            ring,
            plan: Plan::bootstrap(),
            next_plan_id: 1,
            active: servers,
            names: HashMap::new(),
            reported: HashSet::new(),
            ticks: 0,
            pending_installs: Vec::new(),
            cfg,
        }
    }

    fn run(mut self) {
        while self.running.load(Ordering::SeqCst) {
            std::thread::sleep(self.cfg.tick);
            self.ingest();
            self.ticks += 1;
            if self.reported.len() == self.directory.len() && self.ticks >= self.cfg.warmup_ticks {
                self.evaluate();
            }
            self.refresh_installs();
            self.publish_stats();
        }
    }

    /// Drains every broker connection, converting `DMLLA1` payloads to
    /// [`LlaReport`]s for the metrics window and feeding the capacity
    /// estimator the tick's maximum observed egress.
    fn ingest(&mut self) {
        let mut max_egress: Option<f64> = None;
        for (idx, client) in self.clients.iter().enumerate() {
            while client.try_event().is_some() {}
            while let Some(msg) = client.try_message() {
                if msg.channel != lla_channel(idx) {
                    continue;
                }
                let Some(report) = decode_report(&msg.payload) else {
                    continue;
                };
                max_egress = Some(max_egress.unwrap_or(0.0).max(report.egress_bytes as f64));
                let mut channels = Vec::with_capacity(report.channels.len());
                for (name, tick) in report.channels {
                    // The control plane's own traffic (reports, installs,
                    // MOVED frames) must not influence balancing.
                    if is_control_channel(&name) {
                        continue;
                    }
                    let id = channel_id_of(&name);
                    self.names.entry(id).or_insert(name);
                    channels.push((id, tick));
                }
                self.store.record(LlaReport {
                    server: ServerId::from_index(idx),
                    tick: report.tick,
                    measured_egress_bytes: report.egress_bytes,
                    capacity_bytes: self.capacity.capacity(),
                    cpu_busy_micros: 0,
                    channels,
                });
                self.reported.insert(idx);
                self.stats.lock().reports_received += 1;
            }
        }
        if let Some(max) = max_egress {
            self.capacity.observe(max);
        }
    }

    /// One balancing evaluation, mirroring the simulator's
    /// `evaluate_dynamoth`: Algorithm 1 (channel-level replication),
    /// then Algorithm 2 (high-load migration), then — only when the
    /// system is otherwise stable — the low-load drain.
    fn evaluate(&mut self) {
        let capacity = self.capacity.capacity();
        let mut view = LoadView::from_store(&self.store, &self.active, capacity);
        let mut aggregates: Vec<(ChannelId, ChannelAggregate)> = self
            .store
            .channel_aggregates(|c| self.plan.resolve(c, &self.ring))
            .into_iter()
            .collect();
        aggregates.sort_by_key(|&(c, _)| c); // deterministic decisions

        let mut candidate = self.plan.clone();
        let cl_changed = channel_level::apply(
            &mut candidate,
            &self.ring,
            &aggregates,
            &mut view,
            &self.active,
            self.cfg.tuning,
        );
        let high = high_load::rebalance(&candidate, &mut view, &self.ring, self.cfg.tuning);
        let mut candidate = high.plan;
        let mut drained = None;
        if !high.changed && !cl_changed && high.servers_wanted == 0 && self.active.len() > 1 {
            if let Some(out) =
                low_load::rebalance(&candidate, &mut view, &self.ring, self.cfg.tuning)
            {
                candidate = out.plan;
                drained = Some(out.release);
            }
        }

        {
            let mut stats = self.stats.lock();
            if cl_changed {
                stats.channel_level_rebalances += 1;
            }
            if high.changed {
                stats.high_load_rebalances += 1;
            }
            if drained.is_some() {
                stats.low_load_drains += 1;
            }
        }

        if high.servers_wanted > 0 {
            // The pool cannot absorb the load: re-admit parked brokers
            // (the TCP tier cannot rent new machines, but drained ones
            // are free capacity).
            for idx in 0..self.directory.len() {
                let s = ServerId::from_index(idx);
                if !self.active.contains(&s) {
                    self.active.push(s);
                }
            }
            self.active.sort();
        } else if let Some(victim) = drained {
            self.active.retain(|&s| s != victim);
            self.store.forget(victim);
            self.reported.remove(&victim.index());
        }
        self.readmit_loaded_parked_brokers();

        let changes = self.plan.diff(&candidate, &self.ring);
        if changes.is_empty() {
            return;
        }
        let plan_id = PlanId(self.next_plan_id);
        self.next_plan_id += 1;
        candidate.set_id(plan_id);
        let now = Instant::now();
        for change in changes {
            let Some(name) = self.names.get(&change.channel) else {
                continue; // never observed on the wire; nothing to tell
            };
            let frame = InstallFrame {
                plan: plan_id,
                channel: name.clone(),
                old: change.old,
                new: change.new,
            };
            let mut targets: Vec<usize> = frame
                .old
                .servers()
                .iter()
                .chain(frame.new.servers())
                .map(|s| s.index())
                .collect();
            targets.sort_unstable();
            targets.dedup();
            self.send_install(&frame, &targets);
            self.pending_installs.push(PendingInstall {
                installed_at: now,
                frame,
                targets,
            });
        }
        self.plan = candidate;
        self.stats.lock().plans_installed += 1;
    }

    /// A drained broker is invisible to the plan, but the ring still
    /// homes *new* channels on it — if such a channel heats up, the
    /// broker must rejoin the pool or its load is never balanced.
    fn readmit_loaded_parked_brokers(&mut self) {
        let threshold = self.cfg.tuning.lr_low * self.capacity.capacity();
        let mut changed = false;
        for idx in 0..self.directory.len() {
            let s = ServerId::from_index(idx);
            if self.active.contains(&s) {
                continue;
            }
            if self.store.egress_bytes_per_tick(s).unwrap_or(0.0) >= threshold {
                self.active.push(s);
                changed = true;
            }
        }
        if changed {
            self.active.sort();
        }
    }

    fn send_install(&self, frame: &InstallFrame, targets: &[usize]) {
        let payload = frame.encode();
        for &idx in targets {
            if let Some(client) = self.clients.get(idx) {
                client.publish(&install_channel(idx), &payload);
            }
        }
    }

    /// Re-publishes young installs so the sidecars' forwarding TTLs stay
    /// refreshed across the reconfiguration window (the install path is
    /// idempotent per (channel, plan)).
    fn refresh_installs(&mut self) {
        let refresh = self.cfg.install_refresh;
        let now = Instant::now();
        self.pending_installs
            .retain(|p| now.duration_since(p.installed_at) < refresh);
        for p in &self.pending_installs {
            self.send_install(&p.frame, &p.targets);
        }
    }

    fn publish_stats(&self) {
        let mut load_ratios: Vec<(usize, f64)> = (0..self.directory.len())
            .filter_map(|idx| {
                self.store
                    .load_ratio(ServerId::from_index(idx))
                    .map(|lr| (idx, lr))
            })
            .collect();
        load_ratios.sort_by_key(|&(idx, _)| idx);
        let mut stats = self.stats.lock();
        stats.active_brokers = self.active.len();
        stats.plan_version = self.plan.id().0;
        stats.load_ratios = load_ratios;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one broker")]
    fn empty_directory_panics() {
        let _ = LiveLoadBalancer::start(Vec::new(), BalancerConfig::default());
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = BalancerConfig::default();
        assert!(cfg.window >= 1);
        assert!(cfg.warmup_ticks >= 1);
        assert!(cfg.capacity_floor > 0.0);
        assert!(cfg.install_refresh > cfg.tick);
    }
}
