//! Sharded fan-out index with RCU-style per-channel snapshots.
//!
//! The broker's subscription state is split into `N` shards selected by
//! a hash of the **full channel name**, so SUBSCRIBE / UNSUBSCRIBE /
//! PUBLISH on disjoint channels hit disjoint locks and never contend.
//! Within a shard, each channel maps to an immutable
//! `Arc<Vec<SubscriberRef>>` snapshot: writers clone-and-swap the
//! vector under the shard's write lock, while PUBLISH takes only the
//! shard's *shared* read lock long enough to clone the `Arc`, then fans
//! out with no lock held at all — a publisher is never blocked by
//! another publisher, and subscription churn on other channels of the
//! same shard only contends for the brief pointer swap.
//!
//! Entries are keyed by the full channel name, not a hash of it: a
//! 64-bit name-hash collision must never merge two channels' subscriber
//! sets (the seed broker's interned-`Channel(hash)` index silently
//! cross-delivered on collision). The hash here picks the *shard* only;
//! colliding names land in the same shard but remain distinct keys.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::outbox::OutboxSender;

/// One subscriber's entry in a channel snapshot.
#[derive(Clone)]
pub(crate) struct SubscriberRef {
    pub conn: u64,
    pub outbox: OutboxSender,
}

/// Immutable subscriber snapshot of one channel, shared with in-flight
/// publishes.
pub(crate) type ChannelSnapshot = Arc<Vec<SubscriberRef>>;

type Shard = RwLock<HashMap<String, ChannelSnapshot>>;

/// The broker's sharded subscription index.
pub(crate) struct ShardedIndex {
    shards: Vec<Shard>,
}

/// FNV-1a over the channel name; used only to pick a shard.
pub(crate) fn fnv64(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl ShardedIndex {
    /// Creates an index with `shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn new(shards: usize) -> ShardedIndex {
        let n = shards.max(1).next_power_of_two();
        ShardedIndex {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Shard {
        &self.shards[(fnv64(name) as usize) & (self.shards.len() - 1)]
    }

    /// The subscriber snapshot of `name`, if any. Holds the shard read
    /// lock only for the map lookup; the returned snapshot is safe to
    /// iterate with no lock held.
    pub fn snapshot(&self, name: &str) -> Option<ChannelSnapshot> {
        self.shard(name).read().get(name).cloned()
    }

    /// Adds `sub` to `name`'s snapshot (clone-and-swap under the shard
    /// write lock).
    pub fn subscribe(&self, name: &str, sub: SubscriberRef) {
        let mut shard = self.shard(name).write();
        match shard.get_mut(name) {
            Some(snapshot) => {
                let mut next = Vec::with_capacity(snapshot.len() + 1);
                next.extend(snapshot.iter().cloned());
                next.push(sub);
                *snapshot = Arc::new(next);
            }
            None => {
                shard.insert(name.to_owned(), Arc::new(vec![sub]));
            }
        }
    }

    /// Removes connection `conn` from `name`'s snapshot, dropping the
    /// channel entry when it empties.
    pub fn unsubscribe(&self, name: &str, conn: u64) {
        let mut shard = self.shard(name).write();
        if let Some(snapshot) = shard.get_mut(name) {
            let next: Vec<SubscriberRef> = snapshot
                .iter()
                .filter(|s| s.conn != conn)
                .cloned()
                .collect();
            if next.is_empty() {
                shard.remove(name);
            } else {
                *snapshot = Arc::new(next);
            }
        }
    }

    /// Number of subscribers currently on `name`.
    pub fn channel_subscribers(&self, name: &str) -> usize {
        self.snapshot(name).map_or(0, |s| s.len())
    }

    /// Every channel currently holding at least one subscriber, with its
    /// subscriber count — the load analyzer's harvest-time gauge. Locks
    /// one shard at a time (shared), so the snapshot is per-shard
    /// consistent and never blocks the publish path.
    pub fn channels_with_subscribers(&self) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            out.extend(
                guard
                    .iter()
                    .map(|(name, subs)| (name.clone(), subs.len() as u32)),
            );
        }
        out
    }

    /// Total number of (channel, subscriber) pairs across all shards.
    pub fn subscription_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(|v| v.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender() -> OutboxSender {
        OutboxSender::new(1024).0
    }

    /// The seed broker keyed its fan-out index by `Channel(fnv64(name))`,
    /// so two names with colliding hashes shared one subscriber set and
    /// cross-delivered. With a single shard every name's shard hash
    /// "collides", the strongest possible collision regime — entries must
    /// still stay distinct because the map key is the full name.
    #[test]
    fn colliding_shard_hashes_keep_channels_distinct() {
        let index = ShardedIndex::new(1);
        index.subscribe(
            "alpha",
            SubscriberRef {
                conn: 1,
                outbox: sender(),
            },
        );
        index.subscribe(
            "bravo",
            SubscriberRef {
                conn: 2,
                outbox: sender(),
            },
        );
        let alpha = index.snapshot("alpha").expect("alpha indexed");
        let bravo = index.snapshot("bravo").expect("bravo indexed");
        assert_eq!(alpha.iter().map(|s| s.conn).collect::<Vec<_>>(), vec![1]);
        assert_eq!(bravo.iter().map(|s| s.conn).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn snapshots_are_immutable_rcu_views() {
        let index = ShardedIndex::new(4);
        index.subscribe(
            "ch",
            SubscriberRef {
                conn: 1,
                outbox: sender(),
            },
        );
        let before = index.snapshot("ch").unwrap();
        index.subscribe(
            "ch",
            SubscriberRef {
                conn: 2,
                outbox: sender(),
            },
        );
        // The old snapshot is unchanged; the new one sees both.
        assert_eq!(before.len(), 1);
        assert_eq!(index.snapshot("ch").unwrap().len(), 2);
    }

    #[test]
    fn unsubscribe_clears_empty_channels() {
        let index = ShardedIndex::new(2);
        index.subscribe(
            "ch",
            SubscriberRef {
                conn: 7,
                outbox: sender(),
            },
        );
        assert_eq!(index.subscription_count(), 1);
        index.unsubscribe("ch", 7);
        assert!(index.snapshot("ch").is_none());
        assert_eq!(index.subscription_count(), 0);
    }
}
