//! Sharded fan-out index with per-channel sequence-numbered retention.
//!
//! The broker's subscription state is split into `N` shards selected by
//! a hash of the **full channel name**, so SUBSCRIBE / UNSUBSCRIBE /
//! PUBLISH on disjoint channels hit disjoint locks and never contend.
//! Within a shard, each channel maps to an [`ChannelEntry`] holding an
//! immutable `Arc<Vec<SubscriberRef>>` snapshot (writers clone-and-swap
//! it), the channel's monotonic publish sequence, and a bounded
//! evict-oldest ring of recently published payloads. PUBLISH takes the
//! shard's *shared* read lock only long enough to clone the entry
//! `Arc`, then assigns a sequence and clones the subscriber snapshot
//! under the entry's own mutex and fans out with no lock held at all —
//! publishers on *different* channels never serialize, and publishers
//! on the *same* channel serialize exactly as long as sequence
//! assignment requires.
//!
//! Because a subscribe-with-replay registers the subscriber and
//! collects the retained suffix under the same per-channel mutex that
//! publishers assign sequences under, resume is exactly-once by
//! construction: for any concurrent publish, either its frame is in the
//! ring when the subscriber registers (and is replayed, with the
//! publisher's snapshot predating the subscriber), or the subscriber is
//! in the publisher's snapshot (and the frame arrives live, not in the
//! replayed suffix).
//!
//! Entries are keyed by the full channel name, not a hash of it: a
//! 64-bit name-hash collision must never merge two channels' subscriber
//! sets (the seed broker's interned-`Channel(hash)` index silently
//! cross-delivered on collision). The hash here picks the *shard* only;
//! colliding names land in the same shard but remain distinct keys.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::outbox::OutboxSender;

/// One subscriber's entry in a channel snapshot.
#[derive(Clone)]
pub(crate) struct SubscriberRef {
    pub conn: u64,
    pub outbox: OutboxSender,
    /// Whether this subscriber asked for sequenced delivery (the
    /// `DMSEQ1` subscribe form): it receives sequence-prefixed payloads
    /// instead of plain ones.
    pub sequenced: bool,
}

/// Immutable subscriber snapshot of one channel, shared with in-flight
/// publishes.
pub(crate) type ChannelSnapshot = Arc<Vec<SubscriberRef>>;

/// Mutable per-channel state, guarded by the entry mutex.
struct ChannelInner {
    subs: ChannelSnapshot,
    /// Sequence the *next* publish will be assigned; sequences start at
    /// 0 and are per-channel, per-broker-incarnation.
    next_seq: u64,
    /// Recently published payloads `(seq, raw payload)`, oldest first,
    /// bounded by the index's retention caps.
    ring: VecDeque<(u64, Arc<[u8]>)>,
    ring_bytes: usize,
}

/// One channel's slot in a shard map: a mutex around the snapshot,
/// sequence counter and retention ring. Cloning the `Arc<ChannelEntry>`
/// under the shard read lock lets the publish path leave the shard
/// immediately.
struct ChannelEntry {
    inner: Mutex<ChannelInner>,
}

impl ChannelEntry {
    fn new() -> Arc<ChannelEntry> {
        Arc::new(ChannelEntry {
            inner: Mutex::new(ChannelInner {
                subs: Arc::new(Vec::new()),
                next_seq: 0,
                ring: VecDeque::new(),
                ring_bytes: 0,
            }),
        })
    }
}

type Shard = RwLock<HashMap<String, Arc<ChannelEntry>>>;

/// What one publish must fan out: the subscriber snapshot taken under
/// the channel mutex, and the sequence assigned to the frame (when
/// retention is enabled).
pub(crate) struct PublishFanout {
    pub subs: ChannelSnapshot,
    pub seq: Option<u64>,
}

/// The retained suffix and gap verdict of a subscribe-with-resume.
pub(crate) struct SubscribeOutcome {
    /// Frames to replay to the new subscriber, oldest first.
    pub replay: Vec<(u64, Arc<[u8]>)>,
    /// `Some((requested, resume_from))` when the requested sequence is
    /// no longer retained (or lies beyond this incarnation's counter):
    /// everything in `[requested, resume_from)` is lost, detectably.
    pub gap: Option<(u64, u64)>,
    /// The sequence the next live publish will carry.
    pub next_seq: u64,
    /// Whether the subscription was actually registered sequenced
    /// (`false` when retention is disabled and the request degraded to
    /// a plain subscription).
    pub sequenced: bool,
}

/// The broker's sharded subscription index.
pub(crate) struct ShardedIndex {
    shards: Vec<Shard>,
    /// Per-channel retention caps; retention (and therefore sequencing)
    /// is enabled only when both are non-zero.
    retention_frames: usize,
    retention_bytes: usize,
}

/// FNV-1a over the channel name; used only to pick a shard.
pub(crate) fn fnv64(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl ShardedIndex {
    /// Creates an index with `shards` shards (rounded up to a power of
    /// two, minimum 1) retaining up to `retention_frames` frames /
    /// `retention_bytes` payload bytes per channel. Either cap at zero
    /// disables retention and sequencing entirely.
    pub fn new(shards: usize, retention_frames: usize, retention_bytes: usize) -> ShardedIndex {
        let n = shards.max(1).next_power_of_two();
        ShardedIndex {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            retention_frames,
            retention_bytes,
        }
    }

    fn retention_enabled(&self) -> bool {
        self.retention_frames > 0 && self.retention_bytes > 0
    }

    fn shard(&self, name: &str) -> &Shard {
        &self.shards[(fnv64(name) as usize) & (self.shards.len() - 1)]
    }

    /// Looks up `name`'s entry, creating it when absent. Lock order is
    /// always shard → entry, here and everywhere below.
    fn entry_or_create(&self, name: &str) -> Arc<ChannelEntry> {
        if let Some(entry) = self.shard(name).read().get(name) {
            return Arc::clone(entry);
        }
        let mut shard = self.shard(name).write();
        Arc::clone(
            shard
                .entry(name.to_owned())
                .or_insert_with(ChannelEntry::new),
        )
    }

    /// The subscriber snapshot of `name`, if any subscriber is
    /// registered. The returned snapshot is immutable and safe to
    /// iterate with no lock held.
    pub fn snapshot(&self, name: &str) -> Option<ChannelSnapshot> {
        let entry = self.shard(name).read().get(name).cloned()?;
        let subs = Arc::clone(&entry.inner.lock().subs);
        if subs.is_empty() {
            None
        } else {
            Some(subs)
        }
    }

    /// Records one publish of `payload` on `name`: assigns the frame's
    /// sequence, appends it to the retention ring (evicting oldest past
    /// the caps) and returns the subscriber snapshot to fan out to —
    /// all under the channel mutex, so the snapshot/ring hand-off to
    /// concurrent resumes is exactly-once. With retention disabled this
    /// is the old read-mostly path: no sequence, no ring, no entry
    /// created for subscriber-less channels.
    pub fn publish(&self, name: &str, payload: &[u8]) -> PublishFanout {
        if !self.retention_enabled() {
            return PublishFanout {
                subs: self.snapshot(name).unwrap_or_else(|| Arc::new(Vec::new())),
                seq: None,
            };
        }
        // Retention holds frames for subscribers that are *not here
        // yet*, so the entry must exist even when nobody subscribes.
        let entry = self.entry_or_create(name);
        let mut inner = entry.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let frame: Arc<[u8]> = payload.into();
        inner.ring_bytes += frame.len();
        inner.ring.push_back((seq, frame));
        while inner.ring.len() > self.retention_frames || inner.ring_bytes > self.retention_bytes {
            if let Some((_, old)) = inner.ring.pop_front() {
                inner.ring_bytes -= old.len();
            } else {
                break;
            }
        }
        PublishFanout {
            subs: Arc::clone(&inner.subs),
            seq: Some(seq),
        }
    }

    /// Adds `sub` to `name`'s snapshot (replacing any previous
    /// registration of the same connection, so a re-subscribe can
    /// upgrade to sequenced delivery) and, when `from` asks to resume,
    /// collects the retained suffix to replay. Registration and replay
    /// collection happen under the channel mutex shared with
    /// [`Self::publish`]; see the module docs for why that makes resume
    /// exactly-once.
    pub fn subscribe(
        &self,
        name: &str,
        mut sub: SubscriberRef,
        from: Option<u64>,
    ) -> SubscribeOutcome {
        let (sequenced, from) = if self.retention_enabled() {
            (sub.sequenced, from)
        } else {
            // No retention ⇒ no sequences to prefix or resume from:
            // degrade to a plain subscription.
            (false, None)
        };
        sub.sequenced = sequenced;
        let entry = self.entry_or_create(name);
        let mut inner = entry.inner.lock();
        let mut next: Vec<SubscriberRef> = inner
            .subs
            .iter()
            .filter(|s| s.conn != sub.conn)
            .cloned()
            .collect();
        next.push(sub);
        inner.subs = Arc::new(next);
        let next_seq = inner.next_seq;
        let (replay, gap) = match from {
            None => (Vec::new(), None),
            Some(f) if f >= next_seq => {
                // Nothing to replay. Requesting *beyond* the counter
                // means the client's high-water predates this broker
                // incarnation (restart reset the sequence space):
                // surface that discontinuity as a gap, never silence.
                let gap = if f > next_seq {
                    Some((f, next_seq))
                } else {
                    None
                };
                (Vec::new(), gap)
            }
            Some(f) => {
                let oldest = inner.ring.front().map(|(s, _)| *s);
                match oldest {
                    Some(o) if f >= o => {
                        let replay = inner
                            .ring
                            .iter()
                            .filter(|(s, _)| *s >= f)
                            .map(|(s, p)| (*s, Arc::clone(p)))
                            .collect();
                        (replay, None)
                    }
                    _ => {
                        // The requested point was evicted: replay what
                        // is still retained and report the hole before
                        // it.
                        let resume_from = oldest.unwrap_or(next_seq);
                        let replay = inner
                            .ring
                            .iter()
                            .map(|(s, p)| (*s, Arc::clone(p)))
                            .collect();
                        (replay, Some((f, resume_from)))
                    }
                }
            }
        };
        SubscribeOutcome {
            replay,
            gap,
            next_seq,
            sequenced,
        }
    }

    /// Removes connection `conn` from `name`'s snapshot. The channel
    /// entry is dropped only when no subscriber remains *and* the
    /// channel has never been published sequenced — an entry with
    /// history keeps its (bounded) ring so disconnected clients can
    /// still resume.
    pub fn unsubscribe(&self, name: &str, conn: u64) {
        let mut shard = self.shard(name).write();
        if let Some(entry) = shard.get(name) {
            let mut inner = entry.inner.lock();
            let next: Vec<SubscriberRef> = inner
                .subs
                .iter()
                .filter(|s| s.conn != conn)
                .cloned()
                .collect();
            let empty = next.is_empty();
            inner.subs = Arc::new(next);
            let dead = empty && inner.next_seq == 0;
            drop(inner);
            if dead {
                shard.remove(name);
            }
        }
    }

    /// Number of subscribers currently on `name`.
    pub fn channel_subscribers(&self, name: &str) -> usize {
        self.snapshot(name).map_or(0, |s| s.len())
    }

    /// `(retained frames, next sequence)` of `name` — observability for
    /// tests and tooling.
    pub fn retained(&self, name: &str) -> (usize, u64) {
        match self.shard(name).read().get(name) {
            Some(entry) => {
                let inner = entry.inner.lock();
                (inner.ring.len(), inner.next_seq)
            }
            None => (0, 0),
        }
    }

    /// Every channel currently holding at least one subscriber, with its
    /// subscriber count — the load analyzer's harvest-time gauge. Locks
    /// one shard at a time (shared), so the snapshot is per-shard
    /// consistent and never blocks the publish path.
    pub fn channels_with_subscribers(&self) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            for (name, entry) in guard.iter() {
                let n = entry.inner.lock().subs.len();
                if n > 0 {
                    out.push((name.clone(), n as u32));
                }
            }
        }
        out
    }

    /// Total number of (channel, subscriber) pairs across all shards.
    pub fn subscription_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .map(|e| e.inner.lock().subs.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender() -> OutboxSender {
        OutboxSender::new(1024)
    }

    fn sub(conn: u64, sequenced: bool) -> SubscriberRef {
        SubscriberRef {
            conn,
            outbox: sender(),
            sequenced,
        }
    }

    fn plain_index(shards: usize) -> ShardedIndex {
        ShardedIndex::new(shards, 0, 0)
    }

    /// The seed broker keyed its fan-out index by `Channel(fnv64(name))`,
    /// so two names with colliding hashes shared one subscriber set and
    /// cross-delivered. With a single shard every name's shard hash
    /// "collides", the strongest possible collision regime — entries must
    /// still stay distinct because the map key is the full name.
    #[test]
    fn colliding_shard_hashes_keep_channels_distinct() {
        let index = plain_index(1);
        index.subscribe("alpha", sub(1, false), None);
        index.subscribe("bravo", sub(2, false), None);
        let alpha = index.snapshot("alpha").expect("alpha indexed");
        let bravo = index.snapshot("bravo").expect("bravo indexed");
        assert_eq!(alpha.iter().map(|s| s.conn).collect::<Vec<_>>(), vec![1]);
        assert_eq!(bravo.iter().map(|s| s.conn).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn snapshots_are_immutable_rcu_views() {
        let index = plain_index(4);
        index.subscribe("ch", sub(1, false), None);
        let before = index.snapshot("ch").unwrap();
        index.subscribe("ch", sub(2, false), None);
        // The old snapshot is unchanged; the new one sees both.
        assert_eq!(before.len(), 1);
        assert_eq!(index.snapshot("ch").unwrap().len(), 2);
    }

    #[test]
    fn resubscribe_replaces_same_connection() {
        let index = ShardedIndex::new(1, 8, 1 << 20);
        index.subscribe("ch", sub(1, false), None);
        index.subscribe("ch", sub(1, true), None);
        let snap = index.snapshot("ch").unwrap();
        assert_eq!(snap.len(), 1);
        assert!(snap[0].sequenced);
    }

    #[test]
    fn unsubscribe_clears_empty_channels() {
        let index = plain_index(2);
        index.subscribe("ch", sub(7, false), None);
        assert_eq!(index.subscription_count(), 1);
        index.unsubscribe("ch", 7);
        assert!(index.snapshot("ch").is_none());
        assert_eq!(index.subscription_count(), 0);
    }

    #[test]
    fn publish_assigns_monotonic_sequences_and_retains() {
        let index = ShardedIndex::new(2, 4, 1 << 20);
        for i in 0..3u8 {
            let fanout = index.publish("ch", &[i]);
            assert_eq!(fanout.seq, Some(i as u64));
        }
        assert_eq!(index.retained("ch"), (3, 3));
        // No subscriber yet, but the entry retains — and is invisible
        // to the load gauge.
        assert_eq!(index.channel_subscribers("ch"), 0);
        assert!(index.channels_with_subscribers().is_empty());
    }

    #[test]
    fn retention_evicts_oldest_by_frames_and_bytes() {
        let index = ShardedIndex::new(1, 2, 1 << 20);
        for i in 0..5u8 {
            index.publish("ch", &[i]);
        }
        let out = index.subscribe("ch", sub(1, true), Some(0));
        // Frames 0..=2 evicted by the 2-frame cap.
        assert_eq!(out.gap, Some((0, 3)));
        assert_eq!(
            out.replay.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![3, 4]
        );

        let bytes = ShardedIndex::new(1, 64, 8);
        bytes.publish("ch", &[0; 6]);
        bytes.publish("ch", &[1; 6]);
        // 12 bytes > 8-byte cap ⇒ the first frame is evicted.
        assert_eq!(bytes.retained("ch"), (1, 2));
    }

    #[test]
    fn resume_replays_suffix_without_gap() {
        let index = ShardedIndex::new(1, 16, 1 << 20);
        for i in 0..4u8 {
            index.publish("ch", &[i]);
        }
        let out = index.subscribe("ch", sub(1, true), Some(2));
        assert_eq!(out.gap, None);
        assert_eq!(
            out.replay.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(out.next_seq, 4);
        // Resuming exactly at the live edge replays nothing, no gap.
        let live = index.subscribe("ch", sub(2, true), Some(4));
        assert!(live.replay.is_empty());
        assert_eq!(live.gap, None);
    }

    #[test]
    fn resume_beyond_counter_reports_restart_gap() {
        // A broker restart resets the sequence space; a client holding
        // a high-water from the previous incarnation must get a gap,
        // not silence.
        let index = ShardedIndex::new(1, 16, 1 << 20);
        index.publish("ch", b"x");
        let out = index.subscribe("ch", sub(1, true), Some(40));
        assert!(out.replay.is_empty());
        assert_eq!(out.gap, Some((40, 1)));
    }

    #[test]
    fn retention_disabled_degrades_to_plain_subscription() {
        let index = plain_index(1);
        index.publish("ch", b"lost");
        let out = index.subscribe("ch", sub(1, true), Some(0));
        assert!(!out.sequenced);
        assert!(out.replay.is_empty());
        assert_eq!(out.gap, None);
        let fanout = index.publish("ch", b"live");
        assert_eq!(fanout.seq, None);
        assert_eq!(fanout.subs.len(), 1);
        assert!(!fanout.subs[0].sequenced);
    }

    #[test]
    fn entry_with_history_survives_unsubscribe() {
        let index = ShardedIndex::new(1, 16, 1 << 20);
        index.subscribe("ch", sub(1, true), None);
        index.publish("ch", b"a");
        index.unsubscribe("ch", 1);
        assert_eq!(index.channel_subscribers("ch"), 0);
        // The ring is still there: a resume from 0 replays it.
        let out = index.subscribe("ch", sub(1, true), Some(0));
        assert_eq!(out.replay.len(), 1);
        assert_eq!(out.gap, None);
    }
}
