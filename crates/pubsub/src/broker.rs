//! A runnable TCP pub/sub broker speaking the Redis protocol.
//!
//! This is the "deploy it for real" face of the substrate: a
//! [`TcpBroker`] accepts RESP connections (`SUBSCRIBE`, `UNSUBSCRIBE`,
//! `PUBLISH`, `PING`) — enough protocol for any Redis pub/sub client.
//! All I/O runs on [`BrokerConfig::io_loops`] reactor threads (see
//! [`crate::reactor`]): each connection is pinned to one epoll event
//! loop at accept time, which reads it non-blockingly, executes its
//! commands, and drains its outbox with vectored writes when the socket
//! is writable. A slow subscriber never blocks a publisher — deliveries
//! only queue on its outbox — and an outbox overflowing its **byte**
//! budget disconnects the subscriber exactly like Redis'
//! `client-output-buffer-limit` (and the simulation's transport model).
//!
//! The hot path is built to scale with cores:
//!
//! - subscription state lives in a [`ShardedIndex`]: commands on
//!   disjoint channels take disjoint locks (shard chosen by hashing the
//!   channel name), and the index is keyed by the **full** name so a
//!   hash collision can never merge two channels;
//! - `PUBLISH` is read-mostly: it clones the channel's immutable
//!   `Arc` subscriber snapshot under a shared lock and fans out with no
//!   lock held, so concurrent publishers never serialize behind each
//!   other or behind subscription churn on other channels;
//! - the push frame is encoded exactly once per publish and shared as
//!   an `Arc<[u8]>` by every outbox — per-subscriber cost is a
//!   reference-count bump and a bounded-queue push;
//! - publishing stays on the caller's thread: only the first push onto
//!   an empty outbox signals the subscriber's home loop, so a burst of
//!   N frames crosses threads once, and the loop flushes the whole
//!   backlog with one vectored write — under load the coalescing ratio
//!   (frames per `writev`) *improves*;
//! - connection-level state (outbox, subscription list, shutdown flag)
//!   is owned by the connection, so overflow kills and liveness checks
//!   touch no global lock.
//!
//! Beyond plain Redis semantics the broker speaks the `DMSEQ1` resume
//! protocol (see [`crate::seq`]): every publish is assigned a
//! per-channel monotonic sequence and retained in a bounded ring
//! ([`BrokerConfig::retention_frames`] /
//! [`BrokerConfig::retention_bytes`]), and a `SUBSCRIBE` whose channel
//! argument carries the `DMSEQ1;<from>;<name>` form replays the
//! retained suffix before going live — or pushes an explicit gap
//! marker when the requested point was already evicted, so loss is
//! detectable instead of silent.

use std::collections::{BTreeSet, HashMap};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::load::{BrokerLoadAnalyzer, BrokerLoadReport};
use crate::outbox::{self, Frame, OutboxSender, OverflowPolicy};
use crate::reactor::{self, LoopHandle};
use crate::resp::{self, Command, Value};
use crate::seq;
use crate::shard::{ShardedIndex, SubscriberRef};

/// Hard ceiling on auto-selected I/O loops: beyond this, extra loops
/// buy contention, not throughput, for a pub/sub broker whose hot path
/// is fan-out.
const MAX_AUTO_IO_LOOPS: usize = 8;

/// Tuning knobs of a [`TcpBroker`].
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Maximum bytes queued per subscriber connection before the
    /// [`OverflowPolicy`] applies (the Redis
    /// `client-output-buffer-limit` analogue, measured in bytes like
    /// Redis, not frames).
    pub outbox_limit_bytes: usize,
    /// Number of subscription-index shards (rounded up to a power of
    /// two). Commands on channels in different shards never contend.
    pub shards: usize,
    /// What to do with a subscriber whose outbox exceeds its byte
    /// budget: kill it (Redis' behaviour, the default), shed its
    /// oldest queued frames, or conflate — shed the oldest queued
    /// frame *of the same channel* as the incoming one (market-data
    /// style latest-value delivery) — and keep it connected.
    pub overflow_policy: OverflowPolicy,
    /// How long shutdown waits for each connection's queued frames to
    /// reach the kernel before closing the socket anyway. Frames still
    /// queued when the deadline passes are counted as dropped.
    pub shutdown_drain_timeout: Duration,
    /// Maximum published frames retained per channel for sequence-based
    /// resume (evict-oldest). Zero disables retention and sequencing.
    pub retention_frames: usize,
    /// Maximum retained payload bytes per channel (evict-oldest,
    /// applied together with [`Self::retention_frames`]). Zero disables
    /// retention and sequencing.
    pub retention_bytes: usize,
    /// Number of reactor I/O event loops serving connections. `0` (the
    /// default) auto-selects `min(available cores, 8)`. Connections are
    /// pinned to the least-loaded loop at accept time.
    pub io_loops: usize,
    /// When set, a connection whose socket produces no bytes for this
    /// long is killed — half-open TCP detection (a peer that vanished
    /// without a FIN). `None` (the default) keeps silent connections
    /// forever, since a pure subscriber legitimately never writes;
    /// enable it for deployments whose clients `PING` periodically.
    pub liveness_timeout: Option<Duration>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            outbox_limit_bytes: 8 * 1024 * 1024,
            shards: 16,
            overflow_policy: OverflowPolicy::Kill,
            shutdown_drain_timeout: Duration::from_secs(1),
            retention_frames: 1024,
            retention_bytes: 1024 * 1024,
            io_loops: 0,
            liveness_timeout: None,
        }
    }
}

impl BrokerConfig {
    /// The actual loop count [`Self::io_loops`] resolves to: the value
    /// itself when non-zero, else `min(available cores, 8)`.
    pub fn resolved_io_loops(&self) -> usize {
        if self.io_loops > 0 {
            return self.io_loops;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, MAX_AUTO_IO_LOOPS)
    }
}

/// Flush statistics aggregated over every reactor loop: the ratio
/// `frames / writes` is the measured syscall-coalescing factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushStats {
    /// RESP frames flushed to sockets.
    pub frames: u64,
    /// Vectored write syscalls issued to flush them.
    pub writes: u64,
}

/// Per-event-loop I/O statistics (see [`TcpBroker::per_loop_flush_stats`]);
/// summing `frames`/`writes` over all loops yields [`FlushStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopFlushStats {
    /// Index of the event loop (0-based; loop 0 also accepts).
    pub loop_id: usize,
    /// Connections currently pinned to this loop.
    pub connections: usize,
    /// RESP frames this loop flushed to sockets.
    pub frames: u64,
    /// Vectored write syscalls this loop issued.
    pub writes: u64,
    /// Payload bytes this loop handed to the kernel.
    pub bytes: u64,
    /// Times this loop was woken from its poll by another thread
    /// (cross-thread work arriving while it slept).
    pub wakeups: u64,
}

/// What [`TcpBroker::shutdown`] managed to deliver while draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownStats {
    /// Frames handed to the kernel during the drain window.
    pub frames_flushed: u64,
    /// Frames still queued when the drain deadline passed (or a socket
    /// died), discarded.
    pub frames_dropped: u64,
}

/// A point-in-time health snapshot of a [`TcpBroker`]: connection
/// churn, disconnect causes, shed frames and flush efficiency, all from
/// lock-free counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerHealth {
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Connections currently registered.
    pub connections_live: usize,
    /// Connections currently open across all event loops (counted at
    /// the loops; equals [`Self::connections_live`] modulo in-flight
    /// registrations).
    pub open_connections: usize,
    /// High-water mark of simultaneously open connections.
    pub peak_connections: usize,
    /// Live (channel, subscriber) registrations.
    pub subscriptions: usize,
    /// Connections killed because their outbox exceeded its byte
    /// budget under [`OverflowPolicy::Kill`].
    pub overflow_kills: u64,
    /// Connections killed by the liveness deadline
    /// ([`BrokerConfig::liveness_timeout`]): half-open peers.
    pub liveness_kills: u64,
    /// Connections closed after a socket read error.
    pub read_errors: u64,
    /// Connections the peer closed in an orderly way.
    pub client_closes: u64,
    /// Connections closed after an unparseable RESP frame.
    pub protocol_errors: u64,
    /// Frames shed instead of delivered: `DropOldest` overflow, dead
    /// sockets, and expired shutdown drains.
    pub dropped_frames: u64,
    /// Flush efficiency (see [`TcpBroker::flush_stats`]).
    pub flush: FlushStats,
}

/// Per-connection state, shared between the connection's home reactor
/// loop (which owns the socket) and the kill paths (overflow, shutdown,
/// cross-loop publishes).
pub(crate) struct ConnState {
    pub(crate) conn: u64,
    /// Set once by whichever side kills the connection first.
    pub(crate) dead: AtomicBool,
    pub(crate) outbox: OutboxSender,
    /// Channels this connection is subscribed to, in subscription-set
    /// order (drives the count in subscribe/unsubscribe replies and the
    /// teardown sweep).
    pub(crate) channels: Mutex<BTreeSet<String>>,
    /// The reactor loop owning this connection's socket; kills from
    /// other threads are forwarded here for the actual teardown.
    pub(crate) home: LoopHandle,
}

pub(crate) struct BrokerShared {
    pub(crate) config: BrokerConfig,
    pub(crate) index: ShardedIndex,
    /// Live load analyzer riding the publish hot path (see
    /// [`crate::load`]).
    pub(crate) load: BrokerLoadAnalyzer,
    /// Connection registry: touched on connect, disconnect and kill —
    /// never on the pub/sub hot path.
    pub(crate) conns: Mutex<HashMap<u64, Arc<ConnState>>>,
    /// One handle per reactor loop, indexed by loop id.
    pub(crate) loops: Vec<LoopHandle>,
    pub(crate) flush_counters: Arc<outbox::FlushCounters>,
    pub(crate) running: AtomicBool,
    pub(crate) next_conn: AtomicU64,
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) peak_connections: AtomicUsize,
    /// Disconnect causes, for [`TcpBroker::health`].
    pub(crate) overflow_kills: AtomicU64,
    pub(crate) liveness_kills: AtomicU64,
    pub(crate) read_errors: AtomicU64,
    pub(crate) client_closes: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
}

impl BrokerShared {
    /// Kills a connection exactly once: marks it dead, closes its
    /// outbox, unregisters it, and removes every subscription. Safe to
    /// call from any thread; later callers are no-ops. With `notify`
    /// the connection's home loop is told to tear down the socket —
    /// pass `false` only from the home loop's own teardown (which
    /// handles the socket itself). Returns `true` when this call
    /// performed the kill.
    pub(crate) fn kill(&self, state: &Arc<ConnState>, notify: bool) -> bool {
        if state.dead.swap(true, Ordering::SeqCst) {
            return false;
        }
        self.conns.lock().remove(&state.conn);
        state.outbox.close();
        // Taking the channels lock after setting `dead` closes the race
        // with a concurrent SUBSCRIBE on the same connection: either the
        // subscribe saw `dead` and aborted, or its insertion is visible
        // here and swept.
        let names = std::mem::take(&mut *state.channels.lock());
        for name in &names {
            self.index.unsubscribe(name, state.conn);
        }
        if notify {
            state.home.schedule_kill(state.conn);
        }
        true
    }
}

/// A TCP broker serving the Redis pub/sub protocol.
///
/// # Examples
///
/// ```no_run
/// use dynamoth_pubsub::TcpBroker;
///
/// let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
/// println!("pub/sub broker on {}", broker.local_addr());
/// // … connect with any Redis client …
/// broker.shutdown();
/// ```
pub struct TcpBroker {
    shared: Arc<BrokerShared>,
    local_addr: SocketAddr,
    loop_threads: Vec<JoinHandle<()>>,
}

impl TcpBroker {
    /// Binds the broker with default tuning and starts accepting
    /// connections.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding the listener.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpBroker> {
        TcpBroker::bind_with(addr, BrokerConfig::default())
    }

    /// Binds the broker with explicit [`BrokerConfig`] tuning.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding the listener or setting up
    /// the event loops.
    pub fn bind_with(addr: impl ToSocketAddrs, config: BrokerConfig) -> std::io::Result<TcpBroker> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let n_loops = config.resolved_io_loops();
        let loops = reactor::build_loops(n_loops)?;
        let shared = Arc::new(BrokerShared {
            index: ShardedIndex::new(
                config.shards,
                config.retention_frames,
                config.retention_bytes,
            ),
            load: BrokerLoadAnalyzer::new(config.shards),
            config,
            conns: Mutex::new(HashMap::new()),
            loops: loops.iter().map(|(_, h)| h.clone()).collect(),
            flush_counters: Arc::new(outbox::FlushCounters::default()),
            running: AtomicBool::new(true),
            next_conn: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            peak_connections: AtomicUsize::new(0),
            overflow_kills: AtomicU64::new(0),
            liveness_kills: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            client_closes: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        });
        let mut listener = Some(listener);
        let loop_threads = loops
            .into_iter()
            .enumerate()
            .map(|(idx, (poll, handle))| {
                reactor::spawn(idx, poll, handle, Arc::clone(&shared), listener.take())
            })
            .collect::<std::io::Result<Vec<_>>>()
            .inspect_err(|_| {
                // A failed thread spawn mid-bind: tell the loops that
                // did start to exit so their threads wind down.
                shared.running.store(false, Ordering::SeqCst);
                for h in &shared.loops {
                    h.wake();
                }
            })?;
        Ok(TcpBroker {
            shared,
            local_addr,
            loop_threads,
        })
    }

    /// The address the broker listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The number of reactor I/O event loops serving connections.
    pub fn io_loops(&self) -> usize {
        self.shared.loops.len()
    }

    /// Connections accepted since startup.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.connections_accepted.load(Ordering::Relaxed)
    }

    /// Current number of live subscriber registrations.
    pub fn subscription_count(&self) -> usize {
        self.shared.index.subscription_count()
    }

    /// Current number of subscribers on one channel (by full name).
    /// Used by the routed tier's tests and tooling to wait for a
    /// subscription to land without sniffing traffic.
    pub fn channel_subscribers(&self, name: &str) -> usize {
        self.shared.index.channel_subscribers(name)
    }

    /// `(retained frames, next sequence)` of one channel's retention
    /// ring — observability for resume tests and tooling.
    pub fn channel_retention(&self, name: &str) -> (usize, u64) {
        self.shared.index.retained(name)
    }

    /// Aggregate flush statistics over all event loops (frames flushed
    /// and vectored-write syscalls used).
    pub fn flush_stats(&self) -> FlushStats {
        FlushStats {
            frames: self.shared.flush_counters.frames.load(Ordering::Relaxed),
            writes: self.shared.flush_counters.writes.load(Ordering::Relaxed),
        }
    }

    /// Per-event-loop I/O breakdown: connection placement, flush
    /// efficiency and cross-thread wakeups of each loop.
    pub fn per_loop_flush_stats(&self) -> Vec<LoopFlushStats> {
        self.shared
            .loops
            .iter()
            .enumerate()
            .map(|(loop_id, h)| {
                let s = h.stats();
                LoopFlushStats {
                    loop_id,
                    connections: h.conn_count(),
                    frames: s.frames.load(Ordering::Relaxed),
                    writes: s.writes.load(Ordering::Relaxed),
                    bytes: s.bytes.load(Ordering::Relaxed),
                    wakeups: s.wakeups.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// A health snapshot: connection churn, disconnect causes, shed
    /// frames and flush efficiency.
    pub fn health(&self) -> BrokerHealth {
        let s = &self.shared;
        BrokerHealth {
            connections_accepted: s.connections_accepted.load(Ordering::Relaxed),
            connections_live: s.conns.lock().len(),
            open_connections: s.loops.iter().map(|h| h.conn_count()).sum(),
            peak_connections: s.peak_connections.load(Ordering::Relaxed),
            subscriptions: s.index.subscription_count(),
            overflow_kills: s.overflow_kills.load(Ordering::Relaxed),
            liveness_kills: s.liveness_kills.load(Ordering::Relaxed),
            read_errors: s.read_errors.load(Ordering::Relaxed),
            client_closes: s.client_closes.load(Ordering::Relaxed),
            protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
            dropped_frames: s.flush_counters.dropped.load(Ordering::Relaxed),
            flush: self.flush_stats(),
        }
    }

    /// Closes the current load-measurement interval and returns its
    /// per-channel traffic deltas plus the current subscriber gauge —
    /// the broker-side half of the live control plane. Each counter
    /// increment appears in exactly one report across successive calls.
    pub fn load_report(&self) -> BrokerLoadReport {
        self.shared
            .load
            .harvest(self.shared.index.channels_with_subscribers())
    }

    /// A cloneable handle that can harvest [`Self::load_report`]s after
    /// the broker has been moved elsewhere (e.g. from a reporter
    /// thread).
    pub fn load_handle(&self) -> BrokerLoadHandle {
        BrokerLoadHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Frames shed per live connection (connection id, dropped count).
    /// Non-zero entries under [`OverflowPolicy::DropOldest`] identify
    /// the subscribers that cannot keep up.
    pub fn per_connection_drops(&self) -> Vec<(u64, u64)> {
        self.shared
            .conns
            .lock()
            .values()
            .map(|s| (s.conn, s.outbox.dropped_frames()))
            .collect()
    }

    /// Stops accepting connections and disconnects every client,
    /// draining each connection's queued frames for up to
    /// [`BrokerConfig::shutdown_drain_timeout`] before closing its
    /// socket. Returns how many frames the drain flushed vs dropped.
    pub fn shutdown(mut self) -> ShutdownStats {
        self.stop()
    }

    fn stop(&mut self) -> ShutdownStats {
        let flushed_before = self.shared.flush_counters.frames.load(Ordering::Relaxed);
        let dropped_before = self.shared.flush_counters.dropped.load(Ordering::Relaxed);
        self.shared.running.store(false, Ordering::SeqCst);
        // Wake every loop; each drains its own connections (bounded by
        // the drain deadline), closes their sockets and exits.
        for handle in &self.shared.loops {
            handle.wake();
        }
        for thread in self.loop_threads.drain(..) {
            let _ = thread.join();
        }
        let counters = &self.shared.flush_counters;
        ShutdownStats {
            frames_flushed: counters.frames.load(Ordering::Relaxed) - flushed_before,
            frames_dropped: counters.dropped.load(Ordering::Relaxed) - dropped_before,
        }
    }
}

/// A cloneable handle onto a broker's load analyzer, detached from the
/// [`TcpBroker`] value itself so a reporter thread can harvest reports
/// while the broker lives on another thread. Holding a handle does not
/// keep the broker serving — once the broker shuts down the handle just
/// reports the final quiescent counters.
#[derive(Clone)]
pub struct BrokerLoadHandle {
    shared: Arc<BrokerShared>,
}

impl BrokerLoadHandle {
    /// Harvests the next load report (see [`TcpBroker::load_report`]).
    pub fn report(&self) -> BrokerLoadReport {
        self.shared
            .load
            .harvest(self.shared.index.channels_with_subscribers())
    }

    /// `true` once the broker behind this handle has shut down. A
    /// [`LoadReporter`](crate::LoadReporter) polls this to stop cleanly
    /// instead of spinning its publish connection's reconnect loop
    /// against a closed listener forever.
    pub fn is_shutdown(&self) -> bool {
        !self.shared.running.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for BrokerLoadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerLoadHandle").finish_non_exhaustive()
    }
}

impl Drop for TcpBroker {
    fn drop(&mut self) {
        if !self.loop_threads.is_empty() {
            self.stop();
        }
    }
}

impl std::fmt::Debug for TcpBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpBroker")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

/// Encodes `value` into a shareable frame.
pub(crate) fn encode_frame(value: &Value) -> Frame {
    let mut buf = Vec::new();
    resp::encode(value, &mut buf);
    buf.into()
}

fn send_value(out: &OutboxSender, value: &Value) -> bool {
    out.push(encode_frame(value))
}

/// Executes one client command; returns `false` to close the
/// connection. Runs on the connection's home reactor loop; replies go
/// through the outbox like any delivery, so ordering with concurrent
/// publishes is the queue order.
pub(crate) fn handle_command(state: &Arc<ConnState>, value: &Value, shared: &BrokerShared) -> bool {
    let command = match resp::parse_command(value) {
        Ok(c) => c,
        Err(msg) => return send_value(&state.outbox, &Value::Error(msg)),
    };
    match command {
        Command::Ping => send_value(&state.outbox, &Value::Simple("PONG".into())),
        Command::Subscribe(channels) => {
            for arg in channels {
                // A `DMSEQ1;<from|->;<name>` argument asks for sequenced
                // delivery and, with an explicit `from`, a replay of the
                // retained suffix; a plain argument subscribes plainly.
                let (name, from, sequenced) = match seq::parse_subscribe_arg(&arg) {
                    Some((name, from)) => (name.to_owned(), from, true),
                    None => (arg, None, false),
                };
                let (count, outcome) = {
                    let mut subscribed = state.channels.lock();
                    if state.dead.load(Ordering::SeqCst) {
                        return false;
                    }
                    subscribed.insert(name.clone());
                    // Always (re)register: a repeated SUBSCRIBE may
                    // upgrade a plain subscription to a sequenced one or
                    // move its resume point (the post-reconnect and
                    // switch-migration paths re-subscribe in place).
                    let outcome = shared.index.subscribe(
                        &name,
                        SubscriberRef {
                            conn: state.conn,
                            outbox: state.outbox.clone(),
                            sequenced,
                        },
                        from,
                    );
                    (subscribed.len() as i64, outcome)
                };
                if !send_value(
                    &state.outbox,
                    &resp::subscription_push("subscribe", &name, count),
                ) {
                    return false;
                }
                if let Some((requested, resume_from)) = outcome.gap {
                    let gap = resp::message_push(&name, &seq::gap_marker(requested, resume_from));
                    if !send_value(&state.outbox, &gap) {
                        return false;
                    }
                }
                let replayed = outcome.replay.len() as u64;
                for (s, payload) in outcome.replay {
                    let push = resp::message_push(&name, &seq::prefix_payload(s, &payload));
                    if !send_value(&state.outbox, &push) {
                        return false;
                    }
                }
                // An explicit resume gets a completion marker even when
                // nothing was replayed, so the client can surface
                // `Resumed` deterministically.
                if outcome.sequenced && from.is_some() {
                    let done =
                        resp::message_push(&name, &seq::resume_marker(replayed, outcome.next_seq));
                    if !send_value(&state.outbox, &done) {
                        return false;
                    }
                }
            }
            true
        }
        Command::Unsubscribe(channels) => {
            for name in channels {
                let count = {
                    let mut subscribed = state.channels.lock();
                    if subscribed.remove(&name) {
                        shared.index.unsubscribe(&name, state.conn);
                    }
                    subscribed.len() as i64
                };
                if !send_value(
                    &state.outbox,
                    &resp::subscription_push("unsubscribe", &name, count),
                ) {
                    return false;
                }
            }
            true
        }
        Command::Publish(name, payload) => {
            // Sequence assignment and snapshot capture happen together
            // under the channel mutex; the fan-out below holds no lock.
            let fanout = shared.index.publish(&name, &payload);
            let mut delivered = 0i64;
            let mut overflowed: Vec<u64> = Vec::new();
            let mut sent_bytes = 0u64;
            // Encode each delivery variant at most once; every outbox
            // of that kind shares the allocation. Sequenced subscribers
            // only exist when retention is on, i.e. when `seq` is set.
            let mut plain: Option<Frame> = None;
            let mut seqed: Option<Frame> = None;
            // The channel key is shared by every outbox push of this
            // fan-out; only `ConflateByChannel` consults it.
            let chan_key: Arc<str> = Arc::from(name.as_str());
            for sub in fanout.subs.iter() {
                let frame = if sub.sequenced {
                    seqed.get_or_insert_with(|| {
                        let body = seq::prefix_payload(fanout.seq.unwrap_or(0), &payload);
                        encode_frame(&resp::message_push(&name, &body))
                    })
                } else {
                    plain.get_or_insert_with(|| encode_frame(&resp::message_push(&name, &payload)))
                };
                if sub
                    .outbox
                    .push_keyed(Arc::clone(frame), Some(Arc::clone(&chan_key)))
                {
                    delivered += 1;
                    sent_bytes += frame.len() as u64;
                } else {
                    overflowed.push(sub.conn);
                }
            }
            shared.load.note_publish(
                &name,
                (name.len() + payload.len()) as u64,
                sent_bytes,
                delivered as u64,
            );
            // A full outbox means the subscriber cannot keep up: kill
            // it, like Redis does. (Under `DropOldest` and
            // `ConflateByChannel` the push never fails on a live
            // connection, so nothing lands here.)
            for dead_conn in overflowed {
                let victim = shared.conns.lock().get(&dead_conn).cloned();
                if let Some(victim) = victim {
                    if shared.kill(&victim, true) {
                        shared.overflow_kills.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            send_value(&state.outbox, &Value::Integer(delivered))
        }
    }
}
