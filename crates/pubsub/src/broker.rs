//! A runnable TCP pub/sub broker speaking the Redis protocol.
//!
//! This is the "deploy it for real" face of the substrate: the same
//! [`PubSubServer`] state machine the simulation uses, behind a
//! [`TcpBroker`] that accepts RESP connections (`SUBSCRIBE`,
//! `UNSUBSCRIBE`, `PUBLISH`, `PING`) — enough protocol for any Redis
//! pub/sub client. One OS thread reads each connection; deliveries go
//! through a per-connection outbox thread so a slow subscriber never
//! blocks a publisher, and an outbox overflowing its bound disconnects
//! the subscriber exactly like Redis' `client-output-buffer-limit`
//! (and the simulation's transport model).
//!
//! Fan-out fast path: a `PUBLISH` encodes its RESP push frame exactly
//! once and hands every subscriber outbox the same [`Frame`]
//! (`Arc<[u8]>`) — fan-out cost per subscriber is a reference-count
//! bump and a bounded-queue push, not an encode or a buffer copy. A
//! per-channel subscriber index resolves the outboxes up front so the
//! hot path never walks the connection registry.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dynamoth_sim::{NodeId, SimTime};
use parking_lot::Mutex;

use crate::resp::{self, Command, Value};
use crate::server::{CpuModel, PubSubServer};

/// Maximum frames queued per subscriber connection before it is dropped
/// (the Redis `client-output-buffer-limit` analogue).
const OUTBOX_LIMIT: usize = 4_096;

/// An encoded RESP frame shared by every outbox it is queued on: a
/// publish encodes its push frame once and fans the same allocation out
/// to all subscribers (reference-count bump per connection instead of a
/// buffer copy).
type Frame = Arc<[u8]>;

/// One subscriber's entry in the per-channel fan-out index.
struct Subscriber {
    conn: u64,
    node: NodeId,
    outbox: SyncSender<Frame>,
}

struct Registry {
    server: PubSubServer,
    outboxes: HashMap<u64, SyncSender<Frame>>,
    /// Per-channel fan-out index: `PUBLISH` walks the channel's entry
    /// directly instead of resolving each recipient through
    /// `outboxes`. Kept in lockstep with `server`'s subscription state
    /// (both only change under the registry lock).
    index: HashMap<crate::Channel, Vec<Subscriber>>,
}

impl Registry {
    /// Removes `client` everywhere: subscription state, fan-out index
    /// and connection registry. Used for both orderly teardown and
    /// output-buffer-overflow kills.
    fn drop_client(&mut self, conn: u64, node: NodeId) {
        self.outboxes.remove(&conn);
        for channel in self.server.disconnect(node) {
            self.unindex(channel, conn);
        }
    }

    /// Removes `conn` from `channel`'s fan-out entry.
    fn unindex(&mut self, channel: crate::Channel, conn: u64) {
        if let Some(subs) = self.index.get_mut(&channel) {
            subs.retain(|s| s.conn != conn);
            if subs.is_empty() {
                self.index.remove(&channel);
            }
        }
    }
}

struct BrokerShared {
    registry: Mutex<Registry>,
    running: AtomicBool,
    next_conn: AtomicU64,
    connections_accepted: AtomicU64,
}

/// A TCP broker serving the Redis pub/sub protocol.
///
/// # Examples
///
/// ```no_run
/// use dynamoth_pubsub::TcpBroker;
///
/// let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
/// println!("pub/sub broker on {}", broker.local_addr());
/// // … connect with any Redis client …
/// broker.shutdown();
/// ```
pub struct TcpBroker {
    shared: Arc<BrokerShared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpBroker {
    /// Binds the broker and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding the listener.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpBroker> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(BrokerShared {
            registry: Mutex::new(Registry {
                server: PubSubServer::new(CpuModel::default()),
                outboxes: HashMap::new(),
                index: HashMap::new(),
            }),
            running: AtomicBool::new(true),
            next_conn: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(TcpBroker {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the broker listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted since startup.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.connections_accepted.load(Ordering::Relaxed)
    }

    /// Current number of live subscriber registrations.
    pub fn subscription_count(&self) -> usize {
        self.shared.registry.lock().server.subscription_count()
    }

    /// Stops accepting connections and disconnects every client.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        // Dropping the outboxes (and the index, which holds sender
        // clones) ends the writer threads; readers notice on their next
        // poll.
        {
            let mut reg = self.shared.registry.lock();
            reg.outboxes.clear();
            reg.index.clear();
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpBroker {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

impl std::fmt::Debug for TcpBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpBroker")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<BrokerShared>) {
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
                let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                std::thread::spawn(move || connection_loop(conn, stream, conn_shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// Encodes `value` into a shareable frame.
fn encode_frame(value: &Value) -> Frame {
    let mut buf = Vec::new();
    resp::encode(value, &mut buf);
    buf.into()
}

fn send_frame(out: &SyncSender<Frame>, frame: Frame) -> bool {
    match out.try_send(frame) {
        Ok(()) => true,
        // A full outbox means the subscriber cannot keep up: kill it,
        // like Redis does.
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
    }
}

fn send_value(out: &SyncSender<Frame>, value: &Value) -> bool {
    send_frame(out, encode_frame(value))
}

fn connection_loop(conn: u64, stream: TcpStream, shared: Arc<BrokerShared>) {
    let node = NodeId::from_index(conn as usize);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = sync_channel::<Frame>(OUTBOX_LIMIT);
    shared.registry.lock().outboxes.insert(conn, tx.clone());
    let writer = std::thread::spawn(move || writer_loop(write_half, rx));

    let mut read_stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: while shared.running.load(Ordering::SeqCst) {
        match read_stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Check whether our outbox was dropped (kill signal).
                if !shared.registry.lock().outboxes.contains_key(&conn) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        // Process every complete frame in the buffer.
        loop {
            match resp::decode(&buf) {
                Ok(Some((value, used))) => {
                    buf.drain(..used);
                    if !handle_command(conn, node, &value, &tx, &shared) {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    let _ = send_value(&tx, &Value::Error("ERR protocol error".into()));
                    break 'conn;
                }
            }
        }
    }

    // Tear down: unregister and let the writer drain.
    shared.registry.lock().drop_client(conn, node);
    drop(tx);
    let _ = read_stream.shutdown(Shutdown::Both);
    let _ = writer.join();
}

/// Executes one client command; returns `false` to close the connection.
fn handle_command(
    conn: u64,
    node: NodeId,
    value: &Value,
    tx: &SyncSender<Frame>,
    shared: &BrokerShared,
) -> bool {
    let now = SimTime::ZERO; // wall-clock CPU modelling is not needed here
    let command = match resp::parse_command(value) {
        Ok(c) => c,
        Err(msg) => return send_value(tx, &Value::Error(msg)),
    };
    match command {
        Command::Ping => send_value(tx, &Value::Simple("PONG".into())),
        Command::Subscribe(channels) => {
            let mut reg = shared.registry.lock();
            for name in channels {
                let channel = intern(&name);
                if reg.server.subscribe(now, node, channel) {
                    reg.index.entry(channel).or_default().push(Subscriber {
                        conn,
                        node,
                        outbox: tx.clone(),
                    });
                }
                let count = reg.server.channels_of(node).count() as i64;
                if !send_value(tx, &resp::subscription_push("subscribe", &name, count)) {
                    return false;
                }
            }
            true
        }
        Command::Unsubscribe(channels) => {
            let mut reg = shared.registry.lock();
            for name in channels {
                let channel = intern(&name);
                if reg.server.unsubscribe(now, node, channel) {
                    reg.unindex(channel, conn);
                }
                let count = reg.server.channels_of(node).count() as i64;
                if !send_value(tx, &resp::subscription_push("unsubscribe", &name, count)) {
                    return false;
                }
            }
            true
        }
        Command::Publish(name, payload) => {
            let channel = intern(&name);
            let mut reg = shared.registry.lock();
            // CPU accounting; the recipient set comes from the fan-out
            // index below (same subscribers, resolved outboxes).
            let _ = reg.server.publish(now, channel);
            // Encode the push once; every outbox shares the allocation.
            let frame = encode_frame(&resp::message_push(&name, &payload));
            let mut delivered = 0i64;
            let mut dead: Vec<(u64, NodeId)> = Vec::new();
            for sub in reg.index.get(&channel).into_iter().flatten() {
                if send_frame(&sub.outbox, Arc::clone(&frame)) {
                    delivered += 1;
                } else {
                    dead.push((sub.conn, sub.node));
                }
            }
            for (dead_conn, dead_node) in dead {
                reg.drop_client(dead_conn, dead_node);
            }
            drop(reg);
            send_value(tx, &Value::Integer(delivered))
        }
    }
}

/// Stable channel interning: the broker maps names to ids by hashing, so
/// no shared registry lock is needed on the hot path.
fn intern(name: &str) -> crate::Channel {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    crate::Channel(h)
}

fn writer_loop(mut stream: TcpStream, rx: Receiver<Frame>) {
    while let Ok(frame) = rx.recv() {
        if stream.write_all(&frame).is_err() {
            break;
        }
    }
    let _ = stream.flush();
}
