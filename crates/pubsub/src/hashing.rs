//! Consistent hashing with virtual identifiers.
//!
//! This is both the bootstrap mapping of Dynamoth (plan 0 and every
//! channel a plan does not mention, §II-C) and the baseline load
//! balancer the paper compares against in Experiment 2. Each server
//! owns a configurable number of *virtual identifiers* on a 64-bit ring;
//! a channel maps to the server owning the first identifier clockwise
//! from the channel's hash.
//!
//! Hashing uses a fixed avalanche mix (SplitMix64 finalizer) rather than
//! `std`'s `RandomState` so that mappings are stable across processes
//! and runs.

use crate::channel::Channel as ChannelId;
use crate::ids::ServerId;

/// Number of virtual identifiers per server used by default; high enough
/// that channel shares are roughly even, matching the paper's
/// assumption.
pub const DEFAULT_VNODES: u32 = 100;

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hashing ring mapping channels to servers.
///
/// # Examples
///
/// ```
/// use dynamoth_pubsub::{Channel, Ring, ServerId};
///
/// let s0 = ServerId::from_index(0);
/// let s1 = ServerId::from_index(1);
/// let ring = Ring::new(&[s0, s1], 100);
/// let home = ring.server_for(Channel(42));
/// assert!(home == s0 || home == s1);
/// // Lookups are deterministic.
/// assert_eq!(home, ring.server_for(Channel(42)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    // Sorted by point for binary search.
    points: Vec<(u64, ServerId)>,
    servers: Vec<ServerId>,
    vnodes: u32,
}

impl Ring {
    /// Builds a ring over `servers`, each owning `vnodes` virtual
    /// identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or `vnodes` is zero.
    pub fn new(servers: &[ServerId], vnodes: u32) -> Self {
        assert!(!servers.is_empty(), "ring needs at least one server");
        assert!(vnodes > 0, "vnodes must be positive");
        let mut ring = Ring {
            points: Vec::with_capacity(servers.len() * vnodes as usize),
            servers: Vec::new(),
            vnodes,
        };
        for &s in servers {
            ring.insert_points(s);
            ring.servers.push(s);
        }
        ring.points.sort_unstable();
        ring
    }

    fn insert_points(&mut self, server: ServerId) {
        let base = mix(server.0.index() as u64 ^ 0xABCD_EF01);
        for k in 0..self.vnodes {
            self.points.push((mix(base ^ mix(k as u64)), server));
        }
    }

    /// The server responsible for `channel`.
    pub fn server_for(&self, channel: ChannelId) -> ServerId {
        let h = mix(channel.0 ^ 0x1234_5678_9ABC_DEF0);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        // Wrap around the ring.
        let (_, server) = self.points[idx % self.points.len()];
        server
    }

    /// The server responsible for `channel`, skipping the virtual
    /// identifiers of `excluded` servers (used by the reliability
    /// extension to route around servers believed dead). Returns `None`
    /// when every server is excluded. Deterministic: every client
    /// excluding the same set resolves to the same survivor.
    pub fn server_for_excluding(
        &self,
        channel: ChannelId,
        excluded: &[ServerId],
    ) -> Option<ServerId> {
        let h = mix(channel.0 ^ 0x1234_5678_9ABC_DEF0);
        let start = self.points.partition_point(|&(p, _)| p < h);
        (0..self.points.len())
            .map(|k| self.points[(start + k) % self.points.len()].1)
            .find(|s| !excluded.contains(s))
    }

    /// The distinct servers in ring order starting at `channel`'s hash
    /// point: the natural owner first, then each successive fallback.
    /// This is the walk order of the bounded-load spill rule
    /// (*Consistent Hashing with Bounded Loads*, arXiv 1608.01350): the
    /// emergency replan takes the first server on this walk whose
    /// projected load stays under the (1+ε)× mean cap. Deterministic
    /// for a given ring, and consistent with
    /// [`Self::server_for_excluding`]: excluding a set and taking the
    /// first non-excluded walk entry agree.
    pub fn walk(&self, channel: ChannelId) -> Vec<ServerId> {
        let h = mix(channel.0 ^ 0x1234_5678_9ABC_DEF0);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut order = Vec::with_capacity(self.servers.len());
        // A seen-set instead of `order.contains` per point: the walk
        // runs per channel in the replan and placement hot loops, and a
        // linear scan per virtual identifier made it O(points²) on
        // large rings.
        let mut seen: std::collections::HashSet<ServerId> =
            std::collections::HashSet::with_capacity(self.servers.len());
        for k in 0..self.points.len() {
            let s = self.points[(start + k) % self.points.len()].1;
            if seen.insert(s) {
                order.push(s);
                if order.len() == self.servers.len() {
                    break;
                }
            }
        }
        order
    }

    /// Adds a server to the ring (used by the consistent-hashing
    /// baseline when it rents a new machine). No-op if already present.
    pub fn add_server(&mut self, server: ServerId) {
        if self.servers.contains(&server) {
            return;
        }
        self.servers.push(server);
        self.insert_points(server);
        self.points.sort_unstable();
    }

    /// Removes a server; its virtual identifiers (and channels) fall to
    /// the remaining servers.
    ///
    /// # Panics
    ///
    /// Panics if removing the last server.
    pub fn remove_server(&mut self, server: ServerId) {
        if !self.servers.contains(&server) {
            return;
        }
        assert!(self.servers.len() > 1, "cannot remove the last server");
        self.servers.retain(|&s| s != server);
        self.points.retain(|&(_, s)| s != server);
    }

    /// The servers currently on the ring, in insertion order.
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// Number of servers on the ring.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// `false` always (a ring cannot be empty).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: usize) -> Vec<ServerId> {
        (0..n).map(ServerId::from_index).collect()
    }

    #[test]
    fn lookup_is_deterministic() {
        let ring = Ring::new(&servers(4), 100);
        for c in 0..100 {
            assert_eq!(ring.server_for(ChannelId(c)), ring.server_for(ChannelId(c)));
        }
    }

    #[test]
    fn single_server_gets_everything() {
        let ring = Ring::new(&servers(1), 10);
        for c in 0..50 {
            assert_eq!(ring.server_for(ChannelId(c)), servers(1)[0]);
        }
    }

    #[test]
    fn distribution_is_roughly_even() {
        let ss = servers(4);
        let ring = Ring::new(&ss, DEFAULT_VNODES);
        let mut counts = vec![0usize; 4];
        let n = 10_000;
        for c in 0..n {
            let s = ring.server_for(ChannelId(c));
            counts[ss.iter().position(|&x| x == s).unwrap()] += 1;
        }
        for &count in &counts {
            let share = count as f64 / n as f64;
            assert!(
                (0.15..0.35).contains(&share),
                "share {share} should be near 0.25: {counts:?}"
            );
        }
    }

    #[test]
    fn walk_visits_every_server_once_and_agrees_with_exclusion() {
        let ss = servers(5);
        let ring = Ring::new(&ss, DEFAULT_VNODES);
        for c in 0..200 {
            let walk = ring.walk(ChannelId(c));
            assert_eq!(walk.len(), 5, "walk must cover every server");
            let mut sorted = walk.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "walk entries must be distinct");
            assert_eq!(walk[0], ring.server_for(ChannelId(c)));
            // Excluding the first k walk entries resolves to entry k.
            for k in 0..5 {
                assert_eq!(
                    ring.server_for_excluding(ChannelId(c), &walk[..k]),
                    Some(walk[k])
                );
            }
            assert_eq!(ring.server_for_excluding(ChannelId(c), &walk), None);
        }
    }

    #[test]
    fn lookups_are_independent_of_insertion_order() {
        // `points` is sorted by the (point, server) tuple, so even when
        // two servers' virtual identifiers collide on the same point the
        // tie-break is the server id — never the order servers were
        // added. Build the same membership three ways (constructor
        // order, reversed, and incremental add/remove) and require
        // identical walks everywhere.
        let ss = servers(5);
        let forward = Ring::new(&ss, DEFAULT_VNODES);
        let mut reversed_ids = ss.clone();
        reversed_ids.reverse();
        let reversed = Ring::new(&reversed_ids, DEFAULT_VNODES);
        let mut incremental = Ring::new(&[ss[3]], DEFAULT_VNODES);
        for &s in [ss[1], ss[4], ss[0], ss[2]].iter() {
            incremental.add_server(s);
        }
        // A detour through extra membership must not leave residue.
        incremental.add_server(ServerId::from_index(9));
        incremental.remove_server(ServerId::from_index(9));
        for c in 0..500 {
            let channel = ChannelId(c);
            let walk = forward.walk(channel);
            assert_eq!(walk, reversed.walk(channel));
            assert_eq!(walk, incremental.walk(channel));
            assert_eq!(forward.server_for(channel), reversed.server_for(channel));
            assert_eq!(forward.server_for(channel), incremental.server_for(channel));
        }
    }

    #[test]
    fn adding_a_server_moves_only_some_channels() {
        let ss = servers(4);
        let mut ring = Ring::new(&ss, DEFAULT_VNODES);
        let before: Vec<ServerId> = (0..1_000).map(|c| ring.server_for(ChannelId(c))).collect();
        let new = ServerId::from_index(9);
        ring.add_server(new);
        let mut moved = 0;
        for c in 0..1_000 {
            let after = ring.server_for(ChannelId(c));
            if after != before[c as usize] {
                // Every moved channel must move to the new server.
                assert_eq!(after, new, "channel {c} moved to an old server");
                moved += 1;
            }
        }
        // Roughly 1/5 of channels should move.
        assert!((100..350).contains(&moved), "moved {moved}");
    }

    #[test]
    fn removing_a_server_relocates_only_its_channels() {
        let ss = servers(4);
        let mut ring = Ring::new(&ss, DEFAULT_VNODES);
        let victim = ss[2];
        let before: Vec<ServerId> = (0..1_000).map(|c| ring.server_for(ChannelId(c))).collect();
        ring.remove_server(victim);
        for c in 0..1_000 {
            let after = ring.server_for(ChannelId(c));
            if before[c as usize] != victim {
                assert_eq!(after, before[c as usize], "unaffected channel {c} moved");
            } else {
                assert_ne!(after, victim);
            }
        }
    }

    #[test]
    fn exclusion_lookup_routes_around_dead_servers() {
        let ss = servers(4);
        let ring = Ring::new(&ss, DEFAULT_VNODES);
        for c in 0..200 {
            let channel = ChannelId(c);
            let home = ring.server_for(channel);
            assert_eq!(ring.server_for_excluding(channel, &[]), Some(home));
            let alt = ring.server_for_excluding(channel, &[home]).unwrap();
            assert_ne!(alt, home);
            // Unaffected channels keep their home.
            let other = ss.iter().copied().find(|&s| s != home).unwrap();
            if home != other {
                assert_eq!(ring.server_for_excluding(channel, &[other]), Some(home));
            }
        }
        assert_eq!(ring.server_for_excluding(ChannelId(1), &ss), None);
    }

    #[test]
    fn add_is_idempotent_and_remove_of_absent_is_noop() {
        let ss = servers(2);
        let mut ring = Ring::new(&ss, 10);
        ring.add_server(ss[0]);
        assert_eq!(ring.len(), 2);
        ring.remove_server(ServerId::from_index(77));
        assert_eq!(ring.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_ring_panics() {
        let _ = Ring::new(&[], 10);
    }

    #[test]
    #[should_panic(expected = "cannot remove the last server")]
    fn removing_last_server_panics() {
        let ss = servers(1);
        let mut ring = Ring::new(&ss, 10);
        ring.remove_server(ss[0]);
    }
}
