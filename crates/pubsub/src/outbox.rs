//! Byte-budgeted subscriber outboxes with syscall-coalescing writers.
//!
//! Each broker connection owns one outbox: a bounded queue of encoded
//! RESP frames measured in **bytes** (the Redis
//! `client-output-buffer-limit` analogue — a frame-count bound lets a
//! few huge payloads exhaust memory while thousands of tiny pushes trip
//! the limit spuriously; a byte budget bounds actual memory). Producers
//! ([`OutboxSender::push`]) never block; what happens when a push would
//! exceed the budget is the connection's [`OverflowPolicy`]:
//!
//! - [`OverflowPolicy::Kill`] rejects the push and the broker kills the
//!   overflowing connection (Redis' behaviour);
//! - [`OverflowPolicy::DropOldest`] sheds the oldest queued frames to
//!   make room, counts them, and keeps the connection alive — a lossy
//!   subscriber instead of a dead one.
//!
//! The draining side is a dedicated writer thread per connection
//! ([`writer_loop`]): each wakeup takes *every* queued frame in one
//! critical section and flushes the whole batch with
//! [`Write::write_vectored`], so N frames queued behind a slow socket
//! cost one `writev` syscall instead of N `write` syscalls. Under a
//! publish storm the queue depth grows exactly when coalescing pays off
//! most, which is what makes the bound in bytes (not frames) safe.
//!
//! For graceful shutdown, [`OutboxSender::wait_drained`] blocks (with a
//! deadline) until every queued frame has been handed to the kernel, so
//! the broker can flush in-flight deliveries before closing sockets;
//! frames still queued when the writer dies or the deadline passes are
//! tallied as dropped.

use std::collections::VecDeque;
use std::io::{IoSlice, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// An encoded RESP frame shared by every outbox it is queued on.
pub(crate) type Frame = Arc<[u8]>;

/// Linux caps `writev` at `IOV_MAX` (1024) iovecs; larger batches are
/// flushed in chunks of this size.
const MAX_IOVECS: usize = 1024;

/// What a connection's outbox does with a push that would exceed its
/// byte budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Reject the push; the broker disconnects the subscriber exactly
    /// like Redis' `client-output-buffer-limit` (the default).
    #[default]
    Kill,
    /// Shed the oldest queued frames until the new one fits, count the
    /// shed frames, and keep the connection alive. A subscriber that
    /// cannot keep up sees gaps instead of a disconnect.
    DropOldest,
}

/// Aggregate flush counters shared by every writer of one broker:
/// `frames / writes` is the measured coalescing ratio.
#[derive(Debug, Default)]
pub(crate) struct FlushCounters {
    /// Frames handed to the kernel.
    pub frames: AtomicU64,
    /// Vectored write syscalls issued.
    pub writes: AtomicU64,
    /// Frames shed before reaching the kernel: `DropOldest` overflow,
    /// frames abandoned when a writer's socket dies, and frames still
    /// queued when a shutdown drain deadline passes.
    pub dropped: AtomicU64,
}

struct Queue {
    frames: VecDeque<Frame>,
    bytes: usize,
    closed: bool,
    /// True while the writer is flushing a batch it already took out of
    /// `frames` — the queue can be empty with bytes still in flight.
    in_flight: bool,
}

struct Inner {
    queue: Mutex<Queue>,
    wakeup: Condvar,
    limit_bytes: usize,
    policy: OverflowPolicy,
    /// Frames this connection shed (see [`FlushCounters::dropped`] for
    /// the broker-wide total).
    dropped: AtomicU64,
    counters: Arc<FlushCounters>,
}

impl Inner {
    /// Records `n` frames as shed, on both the per-connection and the
    /// broker-wide counter.
    fn record_dropped(&self, n: u64) {
        if n > 0 {
            self.dropped.fetch_add(n, Ordering::Relaxed);
            self.counters.dropped.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Producer handle to a connection's outbox. Cloneable; all clones feed
/// the same writer thread.
#[derive(Clone)]
pub(crate) struct OutboxSender {
    inner: Arc<Inner>,
}

impl OutboxSender {
    /// Creates an outbox bounded at `limit_bytes` queued bytes with the
    /// [`Kill`](OverflowPolicy::Kill) overflow policy and private
    /// counters (convenience for tests).
    #[cfg(test)]
    pub fn new(limit_bytes: usize) -> (OutboxSender, OutboxReceiver) {
        OutboxSender::new_with(
            limit_bytes,
            OverflowPolicy::Kill,
            Arc::new(FlushCounters::default()),
        )
    }

    /// Creates an outbox bounded at `limit_bytes` queued bytes with an
    /// explicit overflow `policy`, reporting into `counters`, and the
    /// receiving half its writer thread drains.
    pub fn new_with(
        limit_bytes: usize,
        policy: OverflowPolicy,
        counters: Arc<FlushCounters>,
    ) -> (OutboxSender, OutboxReceiver) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue {
                frames: VecDeque::new(),
                bytes: 0,
                closed: false,
                in_flight: false,
            }),
            wakeup: Condvar::new(),
            limit_bytes,
            policy,
            dropped: AtomicU64::new(0),
            counters,
        });
        (
            OutboxSender {
                inner: Arc::clone(&inner),
            },
            OutboxReceiver { inner },
        )
    }

    /// Enqueues `frame` without blocking. Returns `false` when the
    /// outbox is closed, or when the frame would exceed the byte budget
    /// under [`OverflowPolicy::Kill`] — the caller must then treat the
    /// connection as dead. Under [`OverflowPolicy::DropOldest`] the
    /// push always succeeds on an open outbox: older frames (or, when
    /// the frame alone exceeds the whole budget, the frame itself) are
    /// shed and counted instead.
    pub fn push(&self, frame: Frame) -> bool {
        let mut shed = 0u64;
        let pushed = {
            let mut q = lock(&self.inner.queue);
            if q.closed {
                return false;
            }
            if q.bytes + frame.len() > self.inner.limit_bytes {
                match self.inner.policy {
                    OverflowPolicy::Kill => return false,
                    // A frame that alone exceeds the whole budget is
                    // shed itself, without pointlessly evicting the
                    // queue first.
                    OverflowPolicy::DropOldest if frame.len() > self.inner.limit_bytes => {}
                    OverflowPolicy::DropOldest => {
                        while q.bytes + frame.len() > self.inner.limit_bytes {
                            if let Some(old) = q.frames.pop_front() {
                                q.bytes -= old.len();
                                shed += 1;
                            }
                        }
                    }
                }
            }
            if q.bytes + frame.len() <= self.inner.limit_bytes {
                q.bytes += frame.len();
                q.frames.push_back(frame);
                true
            } else {
                shed += 1;
                false
            }
        };
        self.inner.record_dropped(shed);
        if pushed {
            self.inner.wakeup.notify_all();
        }
        // DropOldest never reports failure for an open outbox: the
        // connection stays alive even when the frame itself was shed.
        pushed || self.inner.policy == OverflowPolicy::DropOldest
    }

    /// Closes the outbox: queued frames still drain, further pushes
    /// fail, and the writer thread exits once the queue is empty.
    pub fn close(&self) {
        lock(&self.inner.queue).closed = true;
        self.inner.wakeup.notify_all();
    }

    /// Frames this connection has shed (overflow under `DropOldest`,
    /// writer death, or an expired drain deadline).
    pub fn dropped_frames(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Blocks until every queued frame has been handed to the kernel
    /// (queue empty and no batch in flight) or `timeout` passes.
    /// Returns `true` when fully drained.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut q = lock(&self.inner.queue);
        loop {
            if q.frames.is_empty() && !q.in_flight {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            q = match self.inner.wakeup.wait_timeout(q, deadline - now) {
                Ok((g, _)) => g,
                Err(p) => p.into_inner().0,
            };
        }
    }

    /// Discards whatever is still queued, counting it as dropped, and
    /// returns the number of frames discarded. Called after a drain
    /// deadline expires so shutdown accounting matches reality.
    pub fn discard_remaining(&self) -> u64 {
        let n = {
            let mut q = lock(&self.inner.queue);
            let n = q.frames.len() as u64;
            q.frames.clear();
            q.bytes = 0;
            n
        };
        self.inner.record_dropped(n);
        self.inner.wakeup.notify_all();
        n
    }
}

/// Receiving half of an outbox, consumed by [`writer_loop`].
pub(crate) struct OutboxReceiver {
    inner: Arc<Inner>,
}

/// Drains an outbox into `stream` until it is closed and empty or the
/// socket errors. Every wakeup takes the whole queue and flushes it
/// with vectored writes. On socket death the un-flushed remainder is
/// counted as dropped so drain accounting stays exact.
pub(crate) fn writer_loop(rx: OutboxReceiver, mut stream: TcpStream) {
    let counters = Arc::clone(&rx.inner.counters);
    let mut batch: Vec<Frame> = Vec::new();
    loop {
        {
            let mut q = lock(&rx.inner.queue);
            while q.frames.is_empty() && !q.closed {
                q = match rx.inner.wakeup.wait(q) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
            if q.frames.is_empty() {
                break; // closed and fully drained
            }
            batch.extend(q.frames.drain(..));
            q.bytes = 0;
            q.in_flight = true;
        }
        let flushed = write_batch(&mut stream, &batch, &counters);
        let failed = flushed < batch.len();
        {
            let mut q = lock(&rx.inner.queue);
            q.in_flight = false;
            if failed {
                // The socket is gone: everything not yet handed to the
                // kernel — the rest of this batch and whatever queued
                // meanwhile — is dropped.
                let abandoned = (batch.len() - flushed) as u64 + q.frames.len() as u64;
                q.frames.clear();
                q.bytes = 0;
                q.closed = true;
                drop(q);
                rx.inner.record_dropped(abandoned);
            }
        }
        rx.inner.wakeup.notify_all();
        if failed {
            return;
        }
        batch.clear();
    }
    let _ = stream.flush();
    rx.inner.wakeup.notify_all();
}

/// Writes every frame of `batch` with as few syscalls as the kernel
/// allows. Returns the number of frames fully handed to the kernel
/// (`batch.len()` on success, fewer on socket error).
fn write_batch(stream: &mut TcpStream, batch: &[Frame], counters: &FlushCounters) -> usize {
    let mut flushed = 0usize;
    for chunk in batch.chunks(MAX_IOVECS) {
        let mut slices: Vec<IoSlice<'_>> = chunk.iter().map(|f| IoSlice::new(f)).collect();
        let mut rest: &mut [IoSlice<'_>] = &mut slices;
        while !rest.is_empty() {
            match stream.write_vectored(rest) {
                Ok(0) => return flushed,
                Ok(n) => {
                    counters.writes.fetch_add(1, Ordering::Relaxed);
                    IoSlice::advance_slices(&mut rest, n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return flushed,
            }
        }
        counters
            .frames
            .fetch_add(chunk.len() as u64, Ordering::Relaxed);
        flushed += chunk.len();
    }
    flushed
}

fn lock<'a>(m: &'a Mutex<Queue>) -> std::sync::MutexGuard<'a, Queue> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> Frame {
        vec![b'x'; n].into()
    }

    #[test]
    fn push_respects_byte_budget_not_frame_count() {
        let (tx, _rx) = OutboxSender::new(100);
        // Many tiny frames fit …
        for _ in 0..10 {
            assert!(tx.push(frame(10)));
        }
        // … but the budget is exhausted in bytes.
        assert!(!tx.push(frame(1)));
    }

    #[test]
    fn one_big_frame_can_overflow_alone() {
        let (tx, _rx) = OutboxSender::new(100);
        assert!(!tx.push(frame(101)));
        assert!(tx.push(frame(100)));
    }

    #[test]
    fn closed_outbox_rejects_pushes() {
        let (tx, _rx) = OutboxSender::new(100);
        tx.close();
        assert!(!tx.push(frame(1)));
    }

    #[test]
    fn drop_oldest_sheds_exactly_the_overflow() {
        let counters = Arc::new(FlushCounters::default());
        let (tx, _rx) =
            OutboxSender::new_with(100, OverflowPolicy::DropOldest, Arc::clone(&counters));
        // 3 × 30 bytes fit; each further push sheds exactly one oldest
        // frame (no writer is draining, so this is deterministic).
        for _ in 0..10 {
            assert!(tx.push(frame(30)));
        }
        assert_eq!(tx.dropped_frames(), 7);
        assert_eq!(counters.dropped.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn drop_oldest_survives_a_frame_bigger_than_the_budget() {
        let (tx, _rx) = OutboxSender::new_with(
            100,
            OverflowPolicy::DropOldest,
            Arc::new(FlushCounters::default()),
        );
        assert!(tx.push(frame(60)));
        // The oversized frame itself is shed — without evicting the
        // queued frame — and the connection stays alive.
        assert!(tx.push(frame(101)));
        assert_eq!(tx.dropped_frames(), 1);
        // The queue still holds the original 60 bytes.
        assert!(tx.push(frame(40)));
        assert_eq!(tx.dropped_frames(), 1);
    }

    #[test]
    fn closed_drop_oldest_outbox_still_rejects() {
        let (tx, _rx) = OutboxSender::new_with(
            100,
            OverflowPolicy::DropOldest,
            Arc::new(FlushCounters::default()),
        );
        tx.close();
        assert!(!tx.push(frame(1)));
    }

    #[test]
    fn wait_drained_reports_empty_queues_immediately() {
        let (tx, _rx) = OutboxSender::new(100);
        assert!(tx.wait_drained(Duration::from_millis(1)));
        tx.push(frame(10));
        // Nothing drains (no writer): the deadline must fire.
        assert!(!tx.wait_drained(Duration::from_millis(10)));
        assert_eq!(tx.discard_remaining(), 1);
        assert!(tx.wait_drained(Duration::from_millis(1)));
        assert_eq!(tx.dropped_frames(), 1);
    }
}
