//! Byte-budgeted subscriber outboxes drained by the reactor loops.
//!
//! Each broker connection owns one outbox: a bounded queue of encoded
//! RESP frames measured in **bytes** (the Redis
//! `client-output-buffer-limit` analogue — a frame-count bound lets a
//! few huge payloads exhaust memory while thousands of tiny pushes trip
//! the limit spuriously; a byte budget bounds actual memory). Producers
//! ([`OutboxSender::push`]) never block; what happens when a push would
//! exceed the budget is the connection's [`OverflowPolicy`]:
//!
//! - [`OverflowPolicy::Kill`] rejects the push and the broker kills the
//!   overflowing connection (Redis' behaviour);
//! - [`OverflowPolicy::DropOldest`] sheds the oldest queued frames to
//!   make room, counts them, and keeps the connection alive — a lossy
//!   subscriber instead of a dead one;
//! - [`OverflowPolicy::ConflateByChannel`] sheds the oldest queued
//!   frame **of the same channel** as the incoming one (market-data
//!   conflation: a stalled feed subscriber keeps getting the latest
//!   value per channel instead of an ever-staler backlog), falling back
//!   to oldest-first when no same-channel frame is queued. Because only
//!   older frames of the channel are removed and the new frame is
//!   appended at the tail, the PR-6 per-channel sequence stream stays
//!   monotone — conflation advances it, it never reorders it.
//!
//! The draining side is **not** a thread: the connection's home reactor
//! loop calls [`OutboxSender::flush_to`] against the non-blocking
//! socket, flushing as many queued frames as the kernel will take with
//! [`Write::write_vectored`], so N frames queued behind a slow socket
//! cost one `writev` syscall instead of N `write` syscalls. Under a
//! publish storm the queue depth grows exactly when coalescing pays off
//! most, which is what makes the bound in bytes (not frames) safe. A
//! flush stopped short by `EWOULDBLOCK` remembers its offset into the
//! front frame and resumes mid-frame when the socket turns writable.
//!
//! Producers and the draining loop meet through the *scheduled* flag:
//! the first push onto an empty, unscheduled queue fires the outbox's
//! notifier exactly once (telling the home loop "this connection has
//! pending output"), and the flag stays set until a flush fully drains
//! the queue — so a burst of pushes costs one notification, not one
//! per frame, and an idle reactor loop is woken at most once per burst.

use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An encoded RESP frame shared by every outbox it is queued on.
pub(crate) type Frame = Arc<[u8]>;

/// Linux caps `writev` at `IOV_MAX` (1024) iovecs; larger batches are
/// flushed in chunks of this size.
const MAX_IOVECS: usize = 1024;

/// What a connection's outbox does with a push that would exceed its
/// byte budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Reject the push; the broker disconnects the subscriber exactly
    /// like Redis' `client-output-buffer-limit` (the default).
    #[default]
    Kill,
    /// Shed the oldest queued frames until the new one fits, count the
    /// shed frames, and keep the connection alive. A subscriber that
    /// cannot keep up sees gaps instead of a disconnect.
    DropOldest,
    /// Shed the oldest queued frame **for the same channel** as the
    /// incoming one until it fits (market-data conflation: a slow
    /// subscriber keeps the latest value per channel instead of a
    /// stale backlog), falling back to oldest-first when no queued
    /// frame shares the channel. Like [`DropOldest`], the connection
    /// stays alive and every shed frame is counted.
    ///
    /// [`DropOldest`]: OverflowPolicy::DropOldest
    ConflateByChannel,
}

/// Aggregate flush counters shared by every reactor loop of one broker:
/// `frames / writes` is the measured coalescing ratio.
#[derive(Debug, Default)]
pub(crate) struct FlushCounters {
    /// Frames handed to the kernel.
    pub frames: AtomicU64,
    /// Vectored write syscalls issued.
    pub writes: AtomicU64,
    /// Frames shed before reaching the kernel: `DropOldest` overflow,
    /// frames abandoned when a connection's socket dies, and frames
    /// still queued when a shutdown drain deadline passes.
    pub dropped: AtomicU64,
}

/// Per-reactor-loop I/O counters ([`FlushCounters`] is the broker-wide
/// sum of the first three; wakeups are loop-local by nature).
#[derive(Debug, Default)]
pub(crate) struct LoopIoStats {
    /// Frames this loop handed to the kernel.
    pub frames: AtomicU64,
    /// Vectored write syscalls this loop issued.
    pub writes: AtomicU64,
    /// Payload bytes this loop handed to the kernel.
    pub bytes: AtomicU64,
    /// Times this loop was woken from `epoll_wait` via its eventfd
    /// (cross-thread work arriving while it slept).
    pub wakeups: AtomicU64,
}

/// Outcome of one [`OutboxSender::flush_to`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flush {
    /// Every queued frame reached the kernel; the loop can disarm
    /// write-readiness for this connection.
    Drained,
    /// The socket stopped accepting bytes mid-queue; the loop must arm
    /// write-readiness and resume when the socket turns writable.
    Pending,
    /// The socket died. Remaining frames were counted as dropped and
    /// the outbox closed; the caller tears the connection down.
    Failed,
}

/// The channel a queued frame belongs to, when the producer knows it.
/// Compared by **string content** (never a hash) so two distinct
/// channels can never conflate into each other; `None` frames (replies,
/// control markers, replays) are never conflation victims of a publish.
pub(crate) type FrameKey = Option<Arc<str>>;

struct Queue {
    frames: VecDeque<(Frame, FrameKey)>,
    /// Bytes of the front frame already handed to the kernel by an
    /// earlier partial flush. The front frame is *in flight* whenever
    /// this is non-zero — it can never be shed, or the byte stream
    /// would be corrupted mid-frame.
    front_offset: usize,
    /// Sum of the **full** lengths of queued frames (the budget is
    /// charged until a frame is completely on the wire).
    bytes: usize,
    closed: bool,
    /// True from the first push onto an empty queue until a flush fully
    /// drains it — the home loop has been told about the pending data
    /// and needs no further notification.
    scheduled: bool,
}

/// Callback fired (outside all outbox locks) when the queue goes from
/// empty-and-unscheduled to non-empty: tells the connection's home
/// reactor loop to flush this outbox.
pub(crate) type Notifier = Box<dyn Fn() + Send + Sync>;

struct Inner {
    queue: Mutex<Queue>,
    limit_bytes: usize,
    policy: OverflowPolicy,
    /// Frames this connection shed (see [`FlushCounters::dropped`] for
    /// the broker-wide total).
    dropped: AtomicU64,
    counters: Arc<FlushCounters>,
    notify: Option<Notifier>,
}

impl Inner {
    /// Records `n` frames as shed, on both the per-connection and the
    /// broker-wide counter.
    fn record_dropped(&self, n: u64) {
        if n > 0 {
            self.dropped.fetch_add(n, Ordering::Relaxed);
            self.counters.dropped.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Producer handle to a connection's outbox. Cloneable; all clones feed
/// the same queue, drained by the connection's home reactor loop.
#[derive(Clone)]
pub(crate) struct OutboxSender {
    inner: Arc<Inner>,
}

impl OutboxSender {
    /// Creates an outbox bounded at `limit_bytes` queued bytes with the
    /// [`Kill`](OverflowPolicy::Kill) overflow policy, private counters
    /// and no notifier (convenience for tests).
    #[cfg(test)]
    pub fn new(limit_bytes: usize) -> OutboxSender {
        OutboxSender::new_with(
            limit_bytes,
            OverflowPolicy::Kill,
            Arc::new(FlushCounters::default()),
            None,
        )
    }

    /// Creates an outbox bounded at `limit_bytes` queued bytes with an
    /// explicit overflow `policy`, reporting into `counters`, firing
    /// `notify` on each empty-to-pending transition.
    pub fn new_with(
        limit_bytes: usize,
        policy: OverflowPolicy,
        counters: Arc<FlushCounters>,
        notify: Option<Notifier>,
    ) -> OutboxSender {
        OutboxSender {
            inner: Arc::new(Inner {
                queue: Mutex::new(Queue {
                    frames: VecDeque::new(),
                    front_offset: 0,
                    bytes: 0,
                    closed: false,
                    scheduled: false,
                }),
                limit_bytes,
                policy,
                dropped: AtomicU64::new(0),
                counters,
                notify,
            }),
        }
    }

    /// Enqueues `frame` without blocking. Returns `false` when the
    /// outbox is closed, or when the frame would exceed the byte budget
    /// under [`OverflowPolicy::Kill`] — the caller must then treat the
    /// connection as dead. Under [`OverflowPolicy::DropOldest`] the
    /// push always succeeds on an open outbox: older frames (or, when
    /// the frame alone exceeds the whole budget, the frame itself) are
    /// shed and counted instead. A frame mid-write from an earlier
    /// partial flush is never shed.
    pub fn push(&self, frame: Frame) -> bool {
        self.push_keyed(frame, None)
    }

    /// Like [`Self::push`], but tags the frame with the channel it
    /// carries so [`OverflowPolicy::ConflateByChannel`] can pick a
    /// same-channel victim on overflow. Under the other policies the
    /// key is carried but never consulted.
    pub fn push_keyed(&self, frame: Frame, key: FrameKey) -> bool {
        let mut shed = 0u64;
        let mut fire = false;
        let pushed = {
            let mut q = lock(&self.inner.queue);
            if q.closed {
                return false;
            }
            if q.bytes + frame.len() > self.inner.limit_bytes {
                match self.inner.policy {
                    OverflowPolicy::Kill => return false,
                    // A frame that alone exceeds the whole budget is
                    // shed itself, without pointlessly evicting the
                    // queue first.
                    _ if frame.len() > self.inner.limit_bytes => {}
                    OverflowPolicy::DropOldest => {
                        shed += shed_oldest(&mut q, frame.len(), self.inner.limit_bytes);
                    }
                    OverflowPolicy::ConflateByChannel => {
                        // Stale frames of the same channel go first —
                        // that is the conflation — then oldest-first
                        // like DropOldest once no same-channel victim
                        // remains.
                        if let Some(key) = key.as_deref() {
                            shed +=
                                shed_same_channel(&mut q, key, frame.len(), self.inner.limit_bytes);
                        }
                        shed += shed_oldest(&mut q, frame.len(), self.inner.limit_bytes);
                    }
                }
            }
            if q.bytes + frame.len() <= self.inner.limit_bytes {
                q.bytes += frame.len();
                q.frames.push_back((frame, key));
                if !q.scheduled {
                    q.scheduled = true;
                    fire = true;
                }
                true
            } else {
                shed += 1;
                false
            }
        };
        self.inner.record_dropped(shed);
        if fire {
            if let Some(notify) = &self.inner.notify {
                notify();
            }
        }
        // DropOldest and ConflateByChannel never report failure for an
        // open outbox: the connection stays alive even when the frame
        // itself was shed.
        pushed
            || matches!(
                self.inner.policy,
                OverflowPolicy::DropOldest | OverflowPolicy::ConflateByChannel
            )
    }

    /// Closes the outbox: queued frames still drain via
    /// [`Self::flush_to`], but further pushes fail.
    pub fn close(&self) {
        lock(&self.inner.queue).closed = true;
    }

    /// Frames this connection has shed (overflow under `DropOldest`,
    /// socket death, or an expired drain deadline).
    pub fn dropped_frames(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// True when no frames are queued (nothing left to flush).
    pub fn is_empty(&self) -> bool {
        lock(&self.inner.queue).frames.is_empty()
    }

    /// Flushes as many queued frames as `w` will take, with at most one
    /// `writev` per [`MAX_IOVECS`] frames. Called only by the
    /// connection's home reactor loop against its non-blocking socket.
    ///
    /// Frame/write/byte counts land in both the broker-wide
    /// [`FlushCounters`] and the loop's [`LoopIoStats`]; a frame is
    /// counted once, when its last byte is handed to the kernel. On
    /// socket death every remaining frame is counted as dropped and the
    /// outbox closes.
    pub fn flush_to<W: Write>(&self, w: &mut W, loop_stats: &LoopIoStats) -> Flush {
        let counters = &self.inner.counters;
        let mut q = lock(&self.inner.queue);
        loop {
            if q.frames.is_empty() {
                q.scheduled = false;
                return Flush::Drained;
            }
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(q.frames.len().min(MAX_IOVECS));
            for (i, (f, _)) in q.frames.iter().take(MAX_IOVECS).enumerate() {
                slices.push(IoSlice::new(if i == 0 { &f[q.front_offset..] } else { f }));
            }
            match w.write_vectored(&slices) {
                Ok(0) => {
                    let abandoned = self::fail(&mut q);
                    drop(q);
                    self.inner.record_dropped(abandoned);
                    return Flush::Failed;
                }
                Ok(mut n) => {
                    counters.writes.fetch_add(1, Ordering::Relaxed);
                    loop_stats.writes.fetch_add(1, Ordering::Relaxed);
                    loop_stats.bytes.fetch_add(n as u64, Ordering::Relaxed);
                    let mut done = 0u64;
                    // A buggy `Write` impl can report more bytes than
                    // the slices it was handed held; stop at an empty
                    // queue instead of indexing past it.
                    while n > 0 {
                        let Some((front, _)) = q.frames.front() else {
                            q.front_offset = 0;
                            break;
                        };
                        let remaining = front.len() - q.front_offset;
                        if n >= remaining {
                            n -= remaining;
                            if let Some((f, _)) = q.frames.pop_front() {
                                q.bytes -= f.len();
                            }
                            q.front_offset = 0;
                            done += 1;
                        } else {
                            q.front_offset += n;
                            n = 0;
                        }
                    }
                    counters.frames.fetch_add(done, Ordering::Relaxed);
                    loop_stats.frames.fetch_add(done, Ordering::Relaxed);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Flush::Pending,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    let abandoned = self::fail(&mut q);
                    drop(q);
                    self.inner.record_dropped(abandoned);
                    return Flush::Failed;
                }
            }
        }
    }

    /// Discards whatever is still queued, counting it as dropped, and
    /// returns the number of frames discarded. Called after a drain
    /// deadline expires so shutdown accounting matches reality.
    pub fn discard_remaining(&self) -> u64 {
        let n = {
            let mut q = lock(&self.inner.queue);
            let n = q.frames.len() as u64;
            q.frames.clear();
            q.front_offset = 0;
            q.bytes = 0;
            q.scheduled = false;
            n
        };
        self.inner.record_dropped(n);
        n
    }
}

/// Sheds the oldest *sheddable* frames (index 0, or index 1 while the
/// front is mid-write) until `incoming` more bytes fit under `limit`,
/// or nothing sheddable remains. Returns the shed count.
fn shed_oldest(q: &mut Queue, incoming: usize, limit: usize) -> u64 {
    let mut shed = 0u64;
    while q.bytes + incoming > limit {
        let victim = usize::from(q.front_offset > 0);
        match q.frames.remove(victim) {
            Some((old, _)) => {
                q.bytes -= old.len();
                shed += 1;
            }
            None => break, // only the in-flight frame remains
        }
    }
    shed
}

/// Sheds the oldest sheddable frames whose key matches `key` (string
/// comparison — a hash could conflate distinct channels on collision)
/// until `incoming` more bytes fit under `limit`, or no same-channel
/// victim remains. The in-flight front frame is never shed. Returns the
/// shed count.
fn shed_same_channel(q: &mut Queue, key: &str, incoming: usize, limit: usize) -> u64 {
    let mut shed = 0u64;
    while q.bytes + incoming > limit {
        let start = usize::from(q.front_offset > 0);
        let Some(pos) = q
            .frames
            .iter()
            .skip(start)
            .position(|(_, k)| k.as_deref() == Some(key))
            .map(|p| p + start)
        else {
            break;
        };
        if let Some((old, _)) = q.frames.remove(pos) {
            q.bytes -= old.len();
            shed += 1;
        }
    }
    shed
}

/// Marks a queue dead after a socket error: everything still queued is
/// abandoned. Returns the abandoned frame count (recorded by the caller
/// after the lock drops).
fn fail(q: &mut Queue) -> u64 {
    let abandoned = q.frames.len() as u64;
    q.frames.clear();
    q.front_offset = 0;
    q.bytes = 0;
    q.closed = true;
    q.scheduled = false;
    abandoned
}

fn lock(m: &Mutex<Queue>) -> std::sync::MutexGuard<'_, Queue> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> Frame {
        vec![b'x'; n].into()
    }

    /// A writer with a depleting byte budget — a socket send buffer:
    /// once the budget is spent every write is `WouldBlock` until the
    /// test "drains the kernel" by refilling it.
    struct Throttled {
        budget: usize,
        sunk: Vec<u8>,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.budget);
            if n == 0 {
                return Err(ErrorKind::WouldBlock.into());
            }
            self.budget -= n;
            self.sunk.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            let mut wrote = 0usize;
            for b in bufs {
                let n = b.len().min(self.budget);
                self.budget -= n;
                self.sunk.extend_from_slice(&b[..n]);
                wrote += n;
                if self.budget == 0 {
                    break;
                }
            }
            if wrote == 0 {
                return Err(ErrorKind::WouldBlock.into());
            }
            Ok(wrote)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// A writer whose socket has died.
    struct Broken;

    impl Write for Broken {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(ErrorKind::BrokenPipe.into())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn push_respects_byte_budget_not_frame_count() {
        let tx = OutboxSender::new(100);
        // Many tiny frames fit …
        for _ in 0..10 {
            assert!(tx.push(frame(10)));
        }
        // … but the budget is exhausted in bytes.
        assert!(!tx.push(frame(1)));
    }

    #[test]
    fn one_big_frame_can_overflow_alone() {
        let tx = OutboxSender::new(100);
        assert!(!tx.push(frame(101)));
        assert!(tx.push(frame(100)));
    }

    #[test]
    fn closed_outbox_rejects_pushes() {
        let tx = OutboxSender::new(100);
        tx.close();
        assert!(!tx.push(frame(1)));
    }

    #[test]
    fn drop_oldest_sheds_exactly_the_overflow() {
        let counters = Arc::new(FlushCounters::default());
        let tx =
            OutboxSender::new_with(100, OverflowPolicy::DropOldest, Arc::clone(&counters), None);
        // 3 × 30 bytes fit; each further push sheds exactly one oldest
        // frame (nothing drains, so this is deterministic).
        for _ in 0..10 {
            assert!(tx.push(frame(30)));
        }
        assert_eq!(tx.dropped_frames(), 7);
        assert_eq!(counters.dropped.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn drop_oldest_survives_a_frame_bigger_than_the_budget() {
        let tx = OutboxSender::new_with(
            100,
            OverflowPolicy::DropOldest,
            Arc::new(FlushCounters::default()),
            None,
        );
        assert!(tx.push(frame(60)));
        // The oversized frame itself is shed — without evicting the
        // queued frame — and the connection stays alive.
        assert!(tx.push(frame(101)));
        assert_eq!(tx.dropped_frames(), 1);
        // The queue still holds the original 60 bytes.
        assert!(tx.push(frame(40)));
        assert_eq!(tx.dropped_frames(), 1);
    }

    #[test]
    fn closed_drop_oldest_outbox_still_rejects() {
        let tx = OutboxSender::new_with(
            100,
            OverflowPolicy::DropOldest,
            Arc::new(FlushCounters::default()),
            None,
        );
        tx.close();
        assert!(!tx.push(frame(1)));
    }

    #[test]
    fn flush_coalesces_a_burst_into_one_write() {
        let counters = Arc::new(FlushCounters::default());
        let tx = OutboxSender::new_with(1024, OverflowPolicy::Kill, Arc::clone(&counters), None);
        for _ in 0..8 {
            assert!(tx.push(frame(16)));
        }
        let stats = LoopIoStats::default();
        let mut sink: Vec<u8> = Vec::new();
        assert_eq!(tx.flush_to(&mut sink, &stats), Flush::Drained);
        assert_eq!(sink.len(), 128);
        assert_eq!(counters.frames.load(Ordering::Relaxed), 8);
        // `Vec` accepts every iovec at once: one syscall-equivalent.
        assert_eq!(counters.writes.load(Ordering::Relaxed), 1);
        assert_eq!(stats.frames.load(Ordering::Relaxed), 8);
        assert_eq!(stats.writes.load(Ordering::Relaxed), 1);
        assert_eq!(stats.bytes.load(Ordering::Relaxed), 128);
        assert!(tx.is_empty());
    }

    #[test]
    fn partial_flush_resumes_mid_frame_without_corruption() {
        let counters = Arc::new(FlushCounters::default());
        let tx = OutboxSender::new_with(1024, OverflowPolicy::Kill, Arc::clone(&counters), None);
        let payload: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        tx.push(payload.clone().into());
        let stats = LoopIoStats::default();
        // The socket takes 100 bytes per writability cycle.
        let mut socket = Throttled {
            budget: 100,
            sunk: Vec::new(),
        };
        assert_eq!(tx.flush_to(&mut socket, &stats), Flush::Pending);
        // The frame is mid-write: not yet counted, still budgeted.
        assert_eq!(counters.frames.load(Ordering::Relaxed), 0);
        assert!(!tx.is_empty());
        socket.budget = 100;
        assert_eq!(tx.flush_to(&mut socket, &stats), Flush::Pending);
        socket.budget = 100;
        assert_eq!(tx.flush_to(&mut socket, &stats), Flush::Drained);
        assert_eq!(socket.sunk, payload);
        assert_eq!(counters.frames.load(Ordering::Relaxed), 1);
        assert_eq!(counters.writes.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn drop_oldest_never_sheds_the_in_flight_frame() {
        let tx = OutboxSender::new_with(
            100,
            OverflowPolicy::DropOldest,
            Arc::new(FlushCounters::default()),
            None,
        );
        let front: Vec<u8> = vec![b'a'; 60];
        tx.push(front.clone().into());
        let stats = LoopIoStats::default();
        let mut socket = Throttled {
            budget: 10,
            sunk: Vec::new(),
        };
        // 10 of the front frame's 60 bytes reach the wire: in flight.
        assert_eq!(tx.flush_to(&mut socket, &stats), Flush::Pending);
        // Overflow now: the second frame (not the in-flight front) is
        // the eviction victim.
        assert!(tx.push(frame(40)));
        assert!(tx.push(frame(40)));
        assert_eq!(tx.dropped_frames(), 1);
        // Unthrottle: the wire sees the *complete* front frame.
        socket.budget = 1024;
        assert_eq!(tx.flush_to(&mut socket, &stats), Flush::Drained);
        assert_eq!(&socket.sunk[..60], &front[..]);
        assert_eq!(socket.sunk.len(), 100);
    }

    #[test]
    fn dead_socket_fails_the_flush_and_counts_the_queue_dropped() {
        let counters = Arc::new(FlushCounters::default());
        let tx = OutboxSender::new_with(1024, OverflowPolicy::Kill, Arc::clone(&counters), None);
        for _ in 0..5 {
            tx.push(frame(10));
        }
        let stats = LoopIoStats::default();
        assert_eq!(tx.flush_to(&mut Broken, &stats), Flush::Failed);
        assert_eq!(tx.dropped_frames(), 5);
        assert_eq!(counters.dropped.load(Ordering::Relaxed), 5);
        // The outbox is closed: later pushes fail.
        assert!(!tx.push(frame(1)));
    }

    #[test]
    fn notifier_fires_once_per_burst() {
        let fired = Arc::new(AtomicU64::new(0));
        let hits = Arc::clone(&fired);
        let tx = OutboxSender::new_with(
            1024,
            OverflowPolicy::Kill,
            Arc::new(FlushCounters::default()),
            Some(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            })),
        );
        // First push of the burst notifies; the rest ride along.
        for _ in 0..10 {
            tx.push(frame(8));
        }
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        // Draining re-arms the notifier for the next burst.
        let stats = LoopIoStats::default();
        let mut sink: Vec<u8> = Vec::new();
        assert_eq!(tx.flush_to(&mut sink, &stats), Flush::Drained);
        tx.push(frame(8));
        assert_eq!(fired.load(Ordering::Relaxed), 2);
        // A flush stopped short keeps the connection scheduled: no
        // extra notification until the queue fully drains.
        let mut socket = Throttled {
            budget: 4,
            sunk: Vec::new(),
        };
        assert_eq!(tx.flush_to(&mut socket, &stats), Flush::Pending);
        tx.push(frame(8));
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    fn key(s: &str) -> FrameKey {
        Some(Arc::from(s))
    }

    fn conflating(limit: usize) -> (OutboxSender, Arc<FlushCounters>) {
        let counters = Arc::new(FlushCounters::default());
        let tx = OutboxSender::new_with(
            limit,
            OverflowPolicy::ConflateByChannel,
            Arc::clone(&counters),
            None,
        );
        (tx, counters)
    }

    /// Drains the outbox and returns the concatenated wire bytes.
    fn drain(tx: &OutboxSender) -> Vec<u8> {
        let stats = LoopIoStats::default();
        let mut sink: Vec<u8> = Vec::new();
        assert_eq!(tx.flush_to(&mut sink, &stats), Flush::Drained);
        sink
    }

    fn tagged(tag: u8, n: usize) -> Frame {
        vec![tag; n].into()
    }

    #[test]
    fn conflate_sheds_the_same_channel_first() {
        let (tx, counters) = conflating(100);
        assert!(tx.push_keyed(tagged(b'a', 40), key("prices.AAPL")));
        assert!(tx.push_keyed(tagged(b'b', 40), key("prices.MSFT")));
        // Overflow: the stale AAPL tick is the victim, not the oldest
        // frame per se and not the MSFT tick.
        assert!(tx.push_keyed(tagged(b'c', 40), key("prices.AAPL")));
        assert_eq!(tx.dropped_frames(), 1);
        assert_eq!(counters.dropped.load(Ordering::Relaxed), 1);
        let wire = drain(&tx);
        // MSFT survives ahead of the fresh AAPL tick; order preserved.
        assert_eq!(&wire[..40], &vec![b'b'; 40][..]);
        assert_eq!(&wire[40..], &vec![b'c'; 40][..]);
    }

    #[test]
    fn conflate_falls_back_to_oldest_when_no_channel_match() {
        let (tx, _) = conflating(100);
        assert!(tx.push_keyed(tagged(b'a', 40), key("prices.AAPL")));
        assert!(tx.push_keyed(tagged(b'b', 40), key("prices.MSFT")));
        // A third channel has no stale frame to replace: oldest-first.
        assert!(tx.push_keyed(tagged(b'c', 40), key("prices.GOOG")));
        assert_eq!(tx.dropped_frames(), 1);
        let wire = drain(&tx);
        assert_eq!(&wire[..40], &vec![b'b'; 40][..]);
        assert_eq!(&wire[40..], &vec![b'c'; 40][..]);
    }

    #[test]
    fn conflate_matches_by_string_never_by_prefix() {
        let (tx, _) = conflating(100);
        assert!(tx.push_keyed(tagged(b'a', 40), key("tile.1")));
        assert!(tx.push_keyed(tagged(b'b', 40), key("tile.11")));
        // "tile.1" != "tile.11": the distinct channel is only shed by
        // the oldest-first fallback, and "tile.1" goes first (stale
        // same-channel), leaving "tile.11" untouched.
        assert!(tx.push_keyed(tagged(b'c', 40), key("tile.1")));
        let wire = drain(&tx);
        assert_eq!(&wire[..40], &vec![b'b'; 40][..]);
        assert_eq!(&wire[40..], &vec![b'c'; 40][..]);
    }

    #[test]
    fn conflate_never_sheds_the_in_flight_frame() {
        let (tx, _) = conflating(100);
        let front: Vec<u8> = vec![b'a'; 60];
        tx.push_keyed(front.clone().into(), key("feed"));
        let stats = LoopIoStats::default();
        let mut socket = Throttled {
            budget: 10,
            sunk: Vec::new(),
        };
        // 10 of the front frame's 60 bytes are on the wire: in flight.
        assert_eq!(tx.flush_to(&mut socket, &stats), Flush::Pending);
        // Same channel overflows — the in-flight front must survive
        // even though it is the conflation victim by channel.
        assert!(tx.push_keyed(tagged(b'b', 40), key("feed")));
        assert!(tx.push_keyed(tagged(b'c', 40), key("feed")));
        assert_eq!(tx.dropped_frames(), 1);
        socket.budget = 1024;
        assert_eq!(tx.flush_to(&mut socket, &stats), Flush::Drained);
        assert_eq!(&socket.sunk[..60], &front[..]);
        assert_eq!(&socket.sunk[60..], &vec![b'c'; 40][..]);
    }

    #[test]
    fn conflate_survives_a_frame_bigger_than_the_budget() {
        let (tx, _) = conflating(100);
        assert!(tx.push_keyed(tagged(b'a', 60), key("feed")));
        // The oversized frame itself is shed without evicting the queue.
        assert!(tx.push_keyed(tagged(b'b', 101), key("feed")));
        assert_eq!(tx.dropped_frames(), 1);
        assert_eq!(drain(&tx), vec![b'a'; 60]);
    }

    #[test]
    fn conflate_unkeyed_frames_are_never_channel_victims() {
        let (tx, _) = conflating(100);
        // A control reply (no key) queued between ticks.
        assert!(tx.push(tagged(b'r', 40)));
        assert!(tx.push_keyed(tagged(b'a', 40), key("feed")));
        assert!(tx.push_keyed(tagged(b'b', 40), key("feed")));
        // The stale same-channel tick was shed; the reply survived.
        assert_eq!(tx.dropped_frames(), 1);
        let wire = drain(&tx);
        assert_eq!(&wire[..40], &vec![b'r'; 40][..]);
        assert_eq!(&wire[40..], &vec![b'b'; 40][..]);
    }

    /// A writer that reports having written more bytes than the
    /// slices it was handed held (a buggy `Write` impl). Regression
    /// test for the former `expect("non-empty queue")` in `flush_to`:
    /// the flush must drain and stop, not index past the queue.
    struct OverReporting;

    impl Write for OverReporting {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len() + 64)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            Ok(bufs.iter().map(|b| b.len()).sum::<usize>() + 64)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn overreporting_writer_does_not_panic_the_flush() {
        let tx = OutboxSender::new(1024);
        for _ in 0..4 {
            assert!(tx.push(frame(16)));
        }
        let stats = LoopIoStats::default();
        assert_eq!(tx.flush_to(&mut OverReporting, &stats), Flush::Drained);
        assert!(tx.is_empty());
    }

    #[test]
    fn discard_remaining_counts_exactly_the_leftovers() {
        let tx = OutboxSender::new(100);
        assert!(tx.is_empty());
        tx.push(frame(10));
        tx.push(frame(10));
        assert_eq!(tx.discard_remaining(), 2);
        assert!(tx.is_empty());
        assert_eq!(tx.dropped_frames(), 2);
    }
}
