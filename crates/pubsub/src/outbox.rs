//! Byte-budgeted subscriber outboxes with syscall-coalescing writers.
//!
//! Each broker connection owns one [`Outbox`]: a bounded queue of
//! encoded RESP frames measured in **bytes** (the Redis
//! `client-output-buffer-limit` analogue — a frame-count bound lets a
//! few huge payloads exhaust memory while thousands of tiny pushes trip
//! the limit spuriously; a byte budget bounds actual memory). Producers
//! ([`OutboxSender::push`]) never block: a push that would exceed the
//! budget fails, and the broker kills the overflowing connection.
//!
//! The draining side is a dedicated writer thread per connection
//! ([`writer_loop`]): each wakeup takes *every* queued frame in one
//! critical section and flushes the whole batch with
//! [`Write::write_vectored`], so N frames queued behind a slow socket
//! cost one `writev` syscall instead of N `write` syscalls. Under a
//! publish storm the queue depth grows exactly when coalescing pays off
//! most, which is what makes the bound in bytes (not frames) safe.

use std::collections::VecDeque;
use std::io::{IoSlice, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// An encoded RESP frame shared by every outbox it is queued on.
pub(crate) type Frame = Arc<[u8]>;

/// Linux caps `writev` at `IOV_MAX` (1024) iovecs; larger batches are
/// flushed in chunks of this size.
const MAX_IOVECS: usize = 1024;

/// Aggregate flush counters shared by every writer of one broker:
/// `frames / writes` is the measured coalescing ratio.
#[derive(Debug, Default)]
pub(crate) struct FlushCounters {
    /// Frames handed to the kernel.
    pub frames: AtomicU64,
    /// Vectored write syscalls issued.
    pub writes: AtomicU64,
}

struct Queue {
    frames: VecDeque<Frame>,
    bytes: usize,
    closed: bool,
}

struct Inner {
    queue: Mutex<Queue>,
    wakeup: Condvar,
    limit_bytes: usize,
}

/// Producer handle to a connection's outbox. Cloneable; all clones feed
/// the same writer thread.
#[derive(Clone)]
pub(crate) struct OutboxSender {
    inner: Arc<Inner>,
}

impl OutboxSender {
    /// Creates an outbox bounded at `limit_bytes` queued bytes and the
    /// receiving half its writer thread drains.
    pub fn new(limit_bytes: usize) -> (OutboxSender, OutboxReceiver) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue {
                frames: VecDeque::new(),
                bytes: 0,
                closed: false,
            }),
            wakeup: Condvar::new(),
            limit_bytes,
        });
        (
            OutboxSender {
                inner: Arc::clone(&inner),
            },
            OutboxReceiver { inner },
        )
    }

    /// Enqueues `frame` without blocking. Returns `false` when the
    /// outbox is closed or the frame would push the queue over its byte
    /// budget — the caller must treat the connection as dead.
    pub fn push(&self, frame: Frame) -> bool {
        let mut q = lock(&self.inner.queue);
        if q.closed || q.bytes + frame.len() > self.inner.limit_bytes {
            return false;
        }
        q.bytes += frame.len();
        q.frames.push_back(frame);
        drop(q);
        self.inner.wakeup.notify_one();
        true
    }

    /// Closes the outbox: queued frames still drain, further pushes
    /// fail, and the writer thread exits once the queue is empty.
    pub fn close(&self) {
        lock(&self.inner.queue).closed = true;
        self.inner.wakeup.notify_one();
    }
}

/// Receiving half of an outbox, consumed by [`writer_loop`].
pub(crate) struct OutboxReceiver {
    inner: Arc<Inner>,
}

/// Drains an outbox into `stream` until it is closed and empty or the
/// socket errors. Every wakeup takes the whole queue and flushes it
/// with vectored writes.
pub(crate) fn writer_loop(rx: OutboxReceiver, mut stream: TcpStream, counters: Arc<FlushCounters>) {
    let mut batch: Vec<Frame> = Vec::new();
    loop {
        {
            let mut q = lock(&rx.inner.queue);
            while q.frames.is_empty() && !q.closed {
                q = match rx.inner.wakeup.wait(q) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
            if q.frames.is_empty() {
                break; // closed and fully drained
            }
            batch.extend(q.frames.drain(..));
            q.bytes = 0;
        }
        if !write_batch(&mut stream, &batch, &counters) {
            break;
        }
        batch.clear();
    }
    let _ = stream.flush();
}

/// Writes every frame of `batch` with as few syscalls as the kernel
/// allows. Returns `false` on socket error.
fn write_batch(stream: &mut TcpStream, batch: &[Frame], counters: &FlushCounters) -> bool {
    for chunk in batch.chunks(MAX_IOVECS) {
        let mut slices: Vec<IoSlice<'_>> = chunk.iter().map(|f| IoSlice::new(f)).collect();
        let mut rest: &mut [IoSlice<'_>] = &mut slices;
        while !rest.is_empty() {
            match stream.write_vectored(rest) {
                Ok(0) => return false,
                Ok(n) => {
                    counters.writes.fetch_add(1, Ordering::Relaxed);
                    IoSlice::advance_slices(&mut rest, n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        counters
            .frames
            .fetch_add(chunk.len() as u64, Ordering::Relaxed);
    }
    true
}

fn lock<'a>(m: &'a Mutex<Queue>) -> std::sync::MutexGuard<'a, Queue> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> Frame {
        vec![b'x'; n].into()
    }

    #[test]
    fn push_respects_byte_budget_not_frame_count() {
        let (tx, _rx) = OutboxSender::new(100);
        // Many tiny frames fit …
        for _ in 0..10 {
            assert!(tx.push(frame(10)));
        }
        // … but the budget is exhausted in bytes.
        assert!(!tx.push(frame(1)));
    }

    #[test]
    fn one_big_frame_can_overflow_alone() {
        let (tx, _rx) = OutboxSender::new(100);
        assert!(!tx.push(frame(101)));
        assert!(tx.push(frame(100)));
    }

    #[test]
    fn closed_outbox_rejects_pushes() {
        let (tx, _rx) = OutboxSender::new(100);
        tx.close();
        assert!(!tx.push(frame(1)));
    }
}
