//! Stands up a [`TcpBroker`] on a local port and keeps it running so
//! any Redis client can exercise SUBSCRIBE / PUBLISH against it:
//!
//! ```text
//! cargo run -p dynamoth-pubsub --example broker_demo -- [port] [seconds]
//! ```
//!
//! Prints the bound address on the first line, then a summary when the
//! run window closes.

use dynamoth_pubsub::TcpBroker;

fn main() {
    let mut args = std::env::args().skip(1);
    let port: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let seconds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    let broker = TcpBroker::bind(("127.0.0.1", port)).expect("bind broker");
    println!("listening on {}", broker.local_addr());
    std::thread::sleep(std::time::Duration::from_secs(seconds));
    println!(
        "accepted {} connections, {} live subscriptions",
        broker.connections_accepted(),
        broker.subscription_count()
    );
    broker.shutdown();
}
