//! Stands up a [`TcpBroker`] on a local port and keeps it running so
//! any Redis client can exercise SUBSCRIBE / PUBLISH against it:
//!
//! ```text
//! cargo run -p dynamoth-pubsub --example broker_demo -- [port] [seconds]
//! ```
//!
//! Prints the bound address on the first line, then a health snapshot
//! and the shutdown-drain outcome when the run window closes.

use dynamoth_pubsub::TcpBroker;

fn main() {
    let mut args = std::env::args().skip(1);
    let port: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let seconds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    let broker = TcpBroker::bind(("127.0.0.1", port)).expect("bind broker");
    println!(
        "listening on {} ({} event loops)",
        broker.local_addr(),
        broker.io_loops()
    );
    std::thread::sleep(std::time::Duration::from_secs(seconds));

    let health = broker.health();
    println!(
        "health: {} connections accepted, {} open (peak {}), {} subscriptions",
        health.connections_accepted,
        health.open_connections,
        health.peak_connections,
        health.subscriptions
    );
    println!(
        "disconnect causes: {} overflow kills, {} liveness kills, {} read errors, {} client closes, {} protocol errors",
        health.overflow_kills,
        health.liveness_kills,
        health.read_errors,
        health.client_closes,
        health.protocol_errors
    );
    println!(
        "frames: {} flushed in {} writes ({:.1} frames/writev), {} dropped",
        health.flush.frames,
        health.flush.writes,
        health.flush.frames as f64 / health.flush.writes.max(1) as f64,
        health.dropped_frames
    );
    for (conn, dropped) in broker.per_connection_drops() {
        if dropped > 0 {
            println!("  connection {conn}: {dropped} frames shed");
        }
    }
    for l in broker.per_loop_flush_stats() {
        println!(
            "  loop {}: {} conns, {} frames in {} writes ({} bytes), {} wakeups",
            l.loop_id, l.connections, l.frames, l.writes, l.bytes, l.wakeups
        );
    }
    let stats = broker.shutdown();
    println!(
        "shutdown drain: {} frames flushed, {} dropped",
        stats.frames_flushed, stats.frames_dropped
    );
}
