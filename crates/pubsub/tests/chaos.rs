//! Chaos suite for the real-network path: a [`ChaosProxy`] sits between
//! [`TcpPubSubClient`]s and the broker and injects the faults the
//! paper's reconfiguration machinery has to survive — broker restarts,
//! half-open connections, stalls, latency, and torn frames.
//!
//! Every test is deterministic per seed: run with `CHAOS_SEED=<n>` to
//! replay a different fault schedule (CI runs the suite twice with two
//! seeds). Each test body runs under a hard watchdog so a hung client
//! or broker fails fast instead of wedging the suite.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use dynamoth_pubsub::client::frame_payload;
use dynamoth_pubsub::resp::{self, Value};
use dynamoth_pubsub::{
    ChaosProxy, ClientConfig, ClientEvent, Direction, DisconnectReason, DropCause, MessageId,
    TcpBroker, TcpPubSubClient,
};

/// Seed for every proxy and client PRNG in the suite; override with
/// `CHAOS_SEED=<n>` to replay a different (still deterministic) fault
/// schedule.
fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0D15_EA5E)
}

/// Runs `body` on its own thread with a hard deadline: a chaos bug that
/// wedges a client or broker fails the test instead of hanging CI.
fn with_deadline(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {secs}s watchdog deadline")
        }
    }
}

/// Client tuning for chaos tests: fast reconnects and ticks so faults
/// resolve in test time, seeded so the jitter schedule replays.
fn chaos_cfg(seed: u64) -> ClientConfig {
    ClientConfig {
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        connect_timeout: Duration::from_millis(500),
        heartbeat_interval: Duration::from_millis(100),
        liveness_timeout: Duration::from_secs(2),
        tick: Duration::from_millis(5),
        seed: Some(seed),
        ..ClientConfig::default()
    }
}

/// Consumes events until one matches `pred`; panics at the deadline.
fn wait_for_event(
    client: &TcpPubSubClient,
    what: &str,
    timeout: Duration,
    pred: impl Fn(&ClientEvent) -> bool,
) -> ClientEvent {
    let deadline = Instant::now() + timeout;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match client.event_timeout(left.max(Duration::from_millis(1))) {
            Some(event) if pred(&event) => return event,
            Some(_) => {}
            None => {
                if Instant::now() >= deadline {
                    panic!("timed out waiting for event: {what}");
                }
            }
        }
    }
}

/// Polls until the broker registers `n` subscriptions.
fn wait_subscriptions(broker: &TcpBroker, n: usize, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while broker.subscription_count() != n {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A broker restart mid-stream: clients reconnect with backoff, the
/// subscriber transparently re-subscribes, and every post-reconnect
/// publication arrives exactly once, in order. Publications issued
/// *during* the outage are retried and must never arrive more than
/// once (pub/sub has no persistence, so at-most-once is their bound).
#[test]
fn broker_restart_reconnects_resubscribes_and_delivers_exactly_once() {
    with_deadline(120, || {
        let seed = seed();
        let broker_a = TcpBroker::bind("127.0.0.1:0").expect("bind a");
        let proxy = ChaosProxy::spawn(broker_a.local_addr(), seed).expect("proxy");

        let sub = TcpPubSubClient::connect_with(proxy.local_addr(), chaos_cfg(seed ^ 1))
            .expect("subscriber");
        sub.subscribe("room");
        let publisher = TcpPubSubClient::connect_with(proxy.local_addr(), chaos_cfg(seed ^ 2))
            .expect("publisher");
        wait_for_event(&sub, "subscriber connect", Duration::from_secs(10), |e| {
            matches!(e, ClientEvent::Connected { .. })
        });
        wait_subscriptions(&broker_a, 1, "initial subscription");

        for i in 0..5 {
            publisher.publish("room", format!("pre-{i}").as_bytes());
        }
        for i in 0..5 {
            let msg = sub
                .message_timeout(Duration::from_secs(10))
                .unwrap_or_else(|| panic!("pre-{i} never arrived"));
            assert_eq!(msg.payload, format!("pre-{i}").into_bytes());
            assert!(msg.id.is_some(), "client publishes carry wire ids");
        }

        // "Restart" the broker: a replacement comes up elsewhere, the
        // proxy retargets and resets every existing connection — exactly
        // what a crashed-and-respawned broker looks like. The reset
        // comes *before* the old broker's shutdown so clients cannot
        // slip a doomed reconnect in between the two faults.
        let broker_b = TcpBroker::bind("127.0.0.1:0").expect("bind b");
        proxy.set_upstream(broker_b.local_addr());
        proxy.reset_all();
        broker_a.shutdown();

        // Publications issued while the broker is gone queue client-side.
        for i in 0..3 {
            publisher.publish("room", format!("during-{i}").as_bytes());
        }

        wait_for_event(
            &sub,
            "subscriber resubscribe",
            Duration::from_secs(20),
            |e| matches!(e, ClientEvent::Resubscribed { channels: 1 }),
        );
        wait_subscriptions(&broker_b, 1, "resubscription on the new broker");
        wait_for_event(
            &publisher,
            "publisher reconnect",
            Duration::from_secs(20),
            |e| matches!(e, ClientEvent::Connected { .. }),
        );

        // Settle the restart: keep publishing sync markers until one
        // round-trips to the subscriber's *live* session. Pub/sub has no
        // persistence, so only from that point on is every publication
        // guaranteed to reach the re-registered subscriber.
        let mut counts: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut ids: Vec<MessageId> = Vec::new();
        let mut synced = false;
        let mut syncs = 0;
        let deadline = Instant::now() + Duration::from_secs(30);
        while !synced {
            assert!(Instant::now() < deadline, "the restart never settled");
            publisher.publish("room", format!("sync-{syncs}").as_bytes());
            syncs += 1;
            let round = Instant::now() + Duration::from_millis(300);
            while !synced && Instant::now() < round {
                let Some(msg) = sub.message_timeout(Duration::from_millis(50)) else {
                    continue;
                };
                synced = msg.payload.starts_with(b"sync-");
                *counts.entry(msg.payload).or_insert(0) += 1;
                ids.extend(msg.id);
            }
        }

        for i in 0..20 {
            publisher.publish("room", format!("post-{i}").as_bytes());
        }

        // Collect until every post-restart publication arrived.
        let mut posts: Vec<String> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while posts.len() < 20 {
            assert!(
                Instant::now() < deadline,
                "only {}/20 post-restart messages arrived",
                posts.len()
            );
            let Some(msg) = sub.message_timeout(Duration::from_millis(100)) else {
                continue;
            };
            *counts.entry(msg.payload.clone()).or_insert(0) += 1;
            ids.extend(msg.id);
            let body = String::from_utf8(msg.payload).expect("utf8 payload");
            if body.starts_with("post-") {
                posts.push(body);
            }
        }

        // Every post-restart publication exactly once, in publish order.
        let expected: Vec<String> = (0..20).map(|i| format!("post-{i}")).collect();
        assert_eq!(posts, expected);
        // Nothing — pre, during or post — was ever delivered twice, and
        // the dedup machinery saw a unique id on every delivery.
        for (body, count) in &counts {
            assert_eq!(
                *count,
                1,
                "{} delivered {count} times",
                String::from_utf8_lossy(body)
            );
        }
        let unique: std::collections::HashSet<MessageId> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "duplicate wire id slipped through");

        sub.shutdown();
        publisher.shutdown();
        proxy.shutdown();
        broker_b.shutdown();
    });
}

/// The dedup window itself: a raw socket publishes the *same* framed
/// payload twice (what a retry whose ack was lost produces on the
/// wire), and the subscribing client delivers it once and reports the
/// suppressed duplicate.
#[test]
fn duplicate_wire_ids_are_suppressed_and_reported() {
    with_deadline(60, || {
        let seed = seed();
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");

        let sub = TcpPubSubClient::connect_with(broker.local_addr(), chaos_cfg(seed ^ 3))
            .expect("subscriber");
        sub.subscribe("dup");
        wait_subscriptions(&broker, 1, "subscription");

        // A raw publisher re-sending a byte-identical framed payload —
        // same wire id — as a retry would.
        let framed = frame_payload(MessageId { origin: 7, seq: 99 }, b"hello");
        let mut raw = TcpStream::connect(broker.local_addr()).expect("raw publisher");
        let publish = Value::array(vec![
            Value::bulk("PUBLISH"),
            Value::bulk("dup"),
            Value::Bulk(Some(framed)),
        ]);
        let mut wire = Vec::new();
        resp::encode(&publish, &mut wire);
        raw.write_all(&wire).expect("first publish");
        raw.write_all(&wire).expect("duplicate publish");

        let msg = sub
            .message_timeout(Duration::from_secs(10))
            .expect("first delivery");
        assert_eq!(msg.payload, b"hello");
        assert_eq!(msg.id, Some(MessageId { origin: 7, seq: 99 }));

        // The duplicate is suppressed and surfaced as an event …
        wait_for_event(&sub, "duplicate drop", Duration::from_secs(10), |e| {
            matches!(
                e,
                ClientEvent::Dropped {
                    cause: DropCause::Duplicate { channel }
                } if channel == "dup"
            )
        });
        // … and never delivered as a message.
        assert_eq!(sub.message_timeout(Duration::from_millis(300)), None);

        sub.shutdown();
        broker.shutdown();
    });
}

/// A half-open connection — accepted, never answered — is invisible to
/// TCP but must be detected by the heartbeat/liveness deadline, after
/// which the client recovers on its own once the path heals.
#[test]
fn half_open_broker_detected_within_liveness_timeout() {
    with_deadline(60, || {
        let seed = seed();
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
        let proxy = ChaosProxy::spawn(broker.local_addr(), seed).expect("proxy");
        proxy.set_black_hole(true);

        let liveness = Duration::from_millis(500);
        let cfg = ClientConfig {
            liveness_timeout: liveness,
            ..chaos_cfg(seed ^ 4)
        };
        let client = TcpPubSubClient::connect_with(proxy.local_addr(), cfg).expect("client");

        wait_for_event(&client, "connect", Duration::from_secs(10), |e| {
            matches!(e, ClientEvent::Connected { .. })
        });
        let connected_at = Instant::now();
        let event = wait_for_event(
            &client,
            "liveness disconnect",
            Duration::from_secs(10),
            |e| matches!(e, ClientEvent::Disconnected { .. }),
        );
        let detected_in = connected_at.elapsed();
        assert_eq!(
            event,
            ClientEvent::Disconnected {
                reason: DisconnectReason::LivenessTimeout
            }
        );
        // Within the configured timeout, plus scheduling slack.
        assert!(
            detected_in >= liveness,
            "declared dead after {detected_in:?}, before the {liveness:?} deadline"
        );
        assert!(
            detected_in < liveness + Duration::from_secs(1),
            "took {detected_in:?} to detect a half-open broker (timeout {liveness:?})"
        );
        // The black hole never let a byte reach the real broker.
        assert_eq!(broker.connections_accepted(), 0);

        // Heal the path: the client's reconnect loop reaches the broker
        // without any caller intervention.
        proxy.set_black_hole(false);
        let deadline = Instant::now() + Duration::from_secs(10);
        while broker.connections_accepted() == 0 {
            assert!(Instant::now() < deadline, "client never recovered");
            std::thread::sleep(Duration::from_millis(10));
        }

        client.shutdown();
        proxy.shutdown();
        broker.shutdown();
    });
}

/// Stalls and added latency delay delivery but lose nothing: the
/// connection outlives the stall (it is shorter than the liveness
/// deadline) and every message arrives exactly once, in order.
#[test]
fn stalls_and_latency_delay_but_do_not_lose_or_reorder() {
    with_deadline(60, || {
        let seed = seed();
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
        let proxy = ChaosProxy::spawn(broker.local_addr(), seed).expect("proxy");

        let sub = TcpPubSubClient::connect_with(proxy.local_addr(), chaos_cfg(seed ^ 5))
            .expect("subscriber");
        sub.subscribe("laggy");
        let publisher = TcpPubSubClient::connect_with(proxy.local_addr(), chaos_cfg(seed ^ 6))
            .expect("publisher");
        wait_subscriptions(&broker, 1, "subscription");

        proxy.set_latency(Duration::from_millis(5));
        for i in 0..5 {
            publisher.publish("laggy", format!("m-{i}").as_bytes());
        }
        // Freeze the broker→client direction mid-stream; bytes queue
        // behind the stall (shorter than the 2s liveness deadline).
        proxy.stall(Direction::ServerToClient, Duration::from_millis(400));
        for i in 5..10 {
            publisher.publish("laggy", format!("m-{i}").as_bytes());
        }

        let mut bodies = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        while bodies.len() < 10 {
            assert!(
                Instant::now() < deadline,
                "only {}/10 messages arrived through the stall",
                bodies.len()
            );
            if let Some(msg) = sub.message_timeout(Duration::from_millis(100)) {
                bodies.push(String::from_utf8(msg.payload).expect("utf8"));
            }
        }
        let expected: Vec<String> = (0..10).map(|i| format!("m-{i}")).collect();
        assert_eq!(bodies, expected);
        assert_eq!(sub.message_timeout(Duration::from_millis(200)), None);

        sub.shutdown();
        publisher.shutdown();
        proxy.shutdown();
        broker.shutdown();
    });
}

/// Random frame truncation: the proxy keeps tearing the publisher's
/// connection mid-frame, leaving the broker (and the publisher) torn
/// RESP. Nobody may panic, the broker must keep serving, and publish
/// retry + dedup must still deliver every publication exactly once to
/// a subscriber on a clean path.
#[test]
fn torn_frames_never_panic_and_retries_still_deliver_exactly_once() {
    const MESSAGES: usize = 120;
    with_deadline(180, || {
        let seed = seed();
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");

        // Subscriber on a clean, direct connection: it observes what
        // actually got through.
        let sub = TcpPubSubClient::connect_with(broker.local_addr(), chaos_cfg(seed ^ 7))
            .expect("subscriber");
        sub.subscribe("torn");
        wait_subscriptions(&broker, 1, "subscription");

        // Publisher behind a truncating proxy: every chunk has a 25%
        // chance of being cut in half with the connection killed.
        let proxy = ChaosProxy::spawn(broker.local_addr(), seed).expect("proxy");
        proxy.set_truncate_probability(0.25);
        let cfg = ClientConfig {
            publish_retries: 10_000,
            ..chaos_cfg(seed ^ 8)
        };
        let publisher = TcpPubSubClient::connect_with(proxy.local_addr(), cfg).expect("publisher");
        for i in 0..MESSAGES {
            publisher.publish("torn", format!("t-{i}").as_bytes());
        }

        let mut counts: HashMap<String, usize> = HashMap::new();
        let deadline = Instant::now() + Duration::from_secs(150);
        while counts.len() < MESSAGES {
            assert!(
                Instant::now() < deadline,
                "only {}/{MESSAGES} publications survived truncation chaos \
                 ({} truncations injected)",
                counts.len(),
                proxy.truncations()
            );
            if let Some(msg) = sub.message_timeout(Duration::from_millis(100)) {
                *counts
                    .entry(String::from_utf8(msg.payload).expect("utf8"))
                    .or_insert(0) += 1;
            }
        }
        for i in 0..MESSAGES {
            assert_eq!(
                counts.get(&format!("t-{i}")).copied(),
                Some(1),
                "t-{i} was not delivered exactly once"
            );
        }
        // The publisher never gave up, and the broker survived every
        // torn frame: it still serves a brand-new direct connection.
        let mut probe = TcpStream::connect(broker.local_addr()).expect("probe connect");
        let mut wire = Vec::new();
        resp::encode(&Value::array(vec![Value::bulk("PING")]), &mut wire);
        probe.write_all(&wire).expect("probe ping");
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reply = Vec::new();
        let mut chunk = [0u8; 64];
        loop {
            match resp::decode(&reply).expect("valid resp") {
                Some((value, _)) => {
                    assert_eq!(value, Value::Simple("PONG".into()));
                    break;
                }
                None => {
                    let n = probe.read(&mut chunk).expect("probe read");
                    assert!(n > 0, "broker closed the probe connection");
                    reply.extend_from_slice(&chunk[..n]);
                }
            }
        }

        sub.shutdown();
        publisher.shutdown();
        proxy.shutdown();
        broker.shutdown();
    });
}
