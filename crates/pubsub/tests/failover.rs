//! Whole-broker failure detection, emergency replan and the
//! kill-to-recovery SLO (DESIGN.md §12): a broker hard-killed under
//! sustained traffic is declared dead within
//! `suspect_after × report_interval + probe_timeout` (plus scheduling
//! slack), the balancer's emergency replan lands its channels on
//! survivors under the bounded-load cap, routers surface an explicit
//! failover gap — and once the application re-publishes its
//! unconfirmed tail, nothing is lost.
//!
//! Deterministic per seed: run with `CHAOS_SEED=<n>` for a different
//! schedule (CI runs two).

use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    channel_id_of, BalancerConfig, ChannelChange, ChannelMapping, ChaosProxy, ClientConfig,
    ClientEvent, DispatcherSidecar, GapReason, LiveLoadBalancer, LoadReporter, PlanId, Ring,
    RoutedClient, RouterConfig, ServerId, SidecarConfig, SidecarEvent, TcpBroker, TcpPubSubClient,
    DEFAULT_VNODES,
};

const PAYLOAD: usize = 1024;
// Enough channels that the (1+ε)× bounded-load cap is attainable at
// channel granularity: with 2 survivors and ε=0.25 the cap is 0.625 of
// total, so ≥5 near-equal channels leave first-fit room under it (3
// channels would force a 2:1 split, max 2/3 > cap).
const VICTIM_CHANNELS: usize = 6;

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA11_0FE2)
}

/// Hard watchdog: a wedged client, sidecar, reporter or balancer fails
/// fast instead of hanging CI.
fn with_deadline(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {secs}s watchdog deadline")
        }
    }
}

fn sid(i: usize) -> ServerId {
    ServerId::from_index(i)
}

fn client_cfg(seed: u64) -> ClientConfig {
    ClientConfig {
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        connect_timeout: Duration::from_millis(250),
        heartbeat_interval: Duration::from_millis(100),
        liveness_timeout: Duration::from_secs(2),
        tick: Duration::from_millis(5),
        seed: Some(seed),
        ..ClientConfig::default()
    }
}

fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Kill a broker's proxy under sustained traffic and walk the whole
/// recovery: suspect → probe → dead within the SLO bound, quarantine,
/// emergency replan under the `(1+ε)` cap, an explicit
/// `Gap {{ reason: Failover }}` at the subscriber, and zero loss once
/// the publisher re-publishes its tail.
#[test]
fn hard_kill_is_detected_replanned_and_survived() {
    with_deadline(240, || {
        let seed = seed();
        let report_interval = Duration::from_millis(100);
        let suspect_after: u32 = 3;
        let probe_timeout = Duration::from_millis(250);

        let brokers: Vec<TcpBroker> = (0..3)
            .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
            .collect();
        let direct: Vec<SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
        // EVERY component reaches every broker through that broker's
        // proxy, so killing one proxy is indistinguishable from the
        // whole broker host dying: clients, sidecars, reporters and the
        // balancer's probes all lose it at once.
        let proxies: Vec<ChaosProxy> = direct
            .iter()
            .enumerate()
            .map(|(i, &addr)| ChaosProxy::spawn(addr, seed ^ (0x40 + i as u64)).expect("proxy"))
            .collect();
        let proxied: Vec<SocketAddr> = proxies.iter().map(|p| p.local_addr()).collect();

        let sidecars: Vec<DispatcherSidecar> = (0..3)
            .map(|i| {
                DispatcherSidecar::start(
                    sid(i),
                    proxied.clone(),
                    SidecarConfig {
                        ttl: Duration::from_secs(30),
                        tick: Duration::from_millis(5),
                        client: client_cfg(seed ^ (0x50 + i as u64)),
                        ..SidecarConfig::default()
                    },
                )
            })
            .collect();
        let reporters: Vec<LoadReporter> = brokers
            .iter()
            .enumerate()
            .map(|(i, b)| {
                LoadReporter::start(
                    b.load_handle(),
                    i,
                    proxied[i],
                    report_interval,
                    client_cfg(seed ^ (0x60 + i as u64)),
                )
            })
            .collect();

        // Channels homed on the victim, so the kill strands real load.
        let ring = Ring::new(&(0..3).map(sid).collect::<Vec<_>>(), DEFAULT_VNODES);
        let victim = ring.server_for(channel_id_of("f-00")).index();
        let channels: Vec<String> = (0..)
            .map(|i| format!("f-{i:02}"))
            .filter(|name| ring.server_for(channel_id_of(name)).index() == victim)
            .take(VICTIM_CHANNELS)
            .collect();

        let router_cfg = |s: u64| RouterConfig {
            client: client_cfg(s),
            switch_grace: Duration::from_secs(1),
            failover_after: Duration::from_millis(700),
            probe_timeout,
            reprobe_interval: Duration::from_millis(500),
            seed: Some(s),
            ..RouterConfig::default()
        };
        let sub = RoutedClient::connect(proxied.clone(), router_cfg(seed ^ 1));
        let publisher = RoutedClient::connect(proxied.clone(), router_cfg(seed ^ 2));
        for name in &channels {
            sub.subscribe(name);
        }
        wait_until("subscriptions landed", Duration::from_secs(10), || {
            brokers[victim].channel_subscribers(&channels[0]) > 0
        });

        let mut delivered: HashSet<String> = HashSet::new();
        let mut published: Vec<(String, String)> = Vec::new();
        let mut failover_gap = false;
        let mut next = 0usize;
        let mut publish_round =
            |publisher: &RoutedClient, published: &mut Vec<(String, String)>| {
                for name in &channels {
                    let mut body = format!("{name}:{next}:");
                    body.push_str(&"x".repeat(PAYLOAD.saturating_sub(body.len())));
                    publisher.publish(name, body.as_bytes());
                    published.push((name.clone(), body));
                    next += 1;
                }
            };
        let pump =
            |sub: &RoutedClient, delivered: &mut HashSet<String>, failover_gap: &mut bool| {
                while let Some(msg) = sub.try_message() {
                    delivered.insert(String::from_utf8(msg.payload).expect("utf8 payload"));
                }
                while let Some(event) = sub.try_event() {
                    if matches!(
                        event.event,
                        ClientEvent::Gap {
                            reason: GapReason::Failover,
                            ..
                        }
                    ) {
                        *failover_gap = true;
                    }
                }
            };

        let balancer = LiveLoadBalancer::start(
            proxied.clone(),
            BalancerConfig {
                // High floor keeps every LR far below `lr_high`, so the
                // ordinary load balancer stays quiet and the victim's
                // channels are still homed on it when the kill lands —
                // the emergency replan is the only mover in this test.
                capacity_floor: 500_000.0,
                tick: Duration::from_millis(100),
                window: 2,
                warmup_ticks: 2,
                install_refresh: Duration::from_secs(2),
                client: client_cfg(seed ^ 3),
                report_interval,
                suspect_after,
                probe_timeout,
                ..BalancerConfig::default()
            },
        );

        // Steady state first: traffic flowing, every broker reporting.
        for _ in 0..30 {
            publish_round(&publisher, &mut published);
            std::thread::sleep(Duration::from_millis(10));
            pump(&sub, &mut delivered, &mut failover_gap);
        }
        wait_until("pre-kill deliveries", Duration::from_secs(30), || {
            pump(&sub, &mut delivered, &mut failover_gap);
            published.iter().all(|(_, b)| delivered.contains(b))
        });

        // ── The kill ──────────────────────────────────────────────────
        proxies[victim].kill_upstream_hard();
        let killed_at = Instant::now();

        // Detection SLO: suspect after K missed reports, dead once the
        // confirmation probe fails. Allow scheduling slack on top of
        // the analytic bound (balancer tick granularity, probe syscall,
        // CI jitter).
        let slo = report_interval * suspect_after + probe_timeout + Duration::from_millis(2_500);
        while balancer.stats().deaths_declared == 0 {
            assert!(
                killed_at.elapsed() < slo,
                "death not declared within the SLO bound {slo:?}: {:?}",
                balancer.stats()
            );
            publish_round(&publisher, &mut published);
            std::thread::sleep(Duration::from_millis(10));
            pump(&sub, &mut delivered, &mut failover_gap);
        }
        let detection_latency = killed_at.elapsed();

        // Quarantine + emergency replan on the survivors.
        wait_until("emergency replan", Duration::from_secs(10), || {
            let stats = balancer.stats();
            stats.quarantined.contains(&victim) && stats.emergency_replans >= 1
        });
        let stats = balancer.stats();
        let replan = stats.last_replan.clone().expect("replan summary");
        assert_eq!(replan.dead, victim);
        assert!(
            replan.channels_moved >= VICTIM_CHANNELS,
            "replan moved {} channels, expected at least {VICTIM_CHANNELS}",
            replan.channels_moved
        );
        // Bounded-load invariant: immediately after the replan no
        // survivor's projected load ratio exceeds the (1+ε)× mean cap.
        assert!(
            replan.max_survivor_lr <= replan.cap_ratio + 1e-9,
            "survivor over the bounded-load cap: {replan:?}"
        );

        // Keep traffic flowing across the failover window; the router
        // re-points publications and subscriptions onto survivors.
        let deadline = Instant::now() + Duration::from_secs(20);
        while !failover_gap {
            assert!(
                Instant::now() < deadline,
                "no Gap {{ reason: Failover }} surfaced at the subscriber"
            );
            publish_round(&publisher, &mut published);
            std::thread::sleep(Duration::from_millis(10));
            pump(&sub, &mut delivered, &mut failover_gap);
        }

        // The failover gap is the application's cue: frames the victim
        // acknowledged but never fanned out are unquantifiable across
        // incarnations, so the publisher re-publishes its tail.
        // Re-publications get fresh wire ids; the distinct-body
        // accounting below absorbs the resulting duplicates.
        let tail: Vec<(String, String)> = published.clone();
        for (name, body) in &tail {
            publisher.publish(name, body.as_bytes());
        }

        // Zero loss: every body published before, during and after the
        // kill is eventually delivered via the survivors.
        for _ in 0..20 {
            publish_round(&publisher, &mut published);
            std::thread::sleep(Duration::from_millis(10));
            pump(&sub, &mut delivered, &mut failover_gap);
        }
        wait_until("post-failover zero loss", Duration::from_secs(60), || {
            pump(&sub, &mut delivered, &mut failover_gap);
            let missing = published
                .iter()
                .filter(|(_, b)| !delivered.contains(b))
                .count();
            missing == 0
        });

        // The router independently declared the victim dead and
        // re-pointed the stranded subscriptions.
        let sub_stats = sub.stats();
        assert!(
            sub_stats.dead_brokers.contains(&victim),
            "subscriber router never marked the victim dead: {sub_stats:?}"
        );
        assert!(sub_stats.deaths_detected >= 1);
        assert!(sub_stats.failover_repoints >= 1);

        eprintln!(
            "kill-to-death {detection_latency:?} (SLO bound {slo:?}), replan {replan:?}, \
             {} bodies delivered",
            delivered.len()
        );

        balancer.shutdown();
        sub.shutdown();
        publisher.shutdown();
        for reporter in reporters {
            reporter.shutdown();
        }
        for sidecar in sidecars {
            sidecar.shutdown();
        }
        for proxy in proxies {
            proxy.shutdown();
        }
        for broker in brokers {
            broker.shutdown();
        }
    });
}

/// Cold-start regression: a broker killed before *any* traffic has been
/// measured used to produce a `(1+ε)×0/n = 0` byte cap in the emergency
/// replan. Zero total now means uncapped — the load-capped walk
/// degenerates to plain consistent hashing over the survivors — and the
/// replan must still rehome every stranded subscription. Survivors run
/// without reporters so their measured egress is exactly `None → 0`.
#[test]
fn cold_start_kill_replans_uncapped() {
    with_deadline(180, || {
        let seed = seed();
        let report_interval = Duration::from_millis(100);

        let brokers: Vec<TcpBroker> = (0..3)
            .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
            .collect();
        let direct: Vec<SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
        let proxies: Vec<ChaosProxy> = direct
            .iter()
            .enumerate()
            .map(|(i, &addr)| ChaosProxy::spawn(addr, seed ^ (0xC0 + i as u64)).expect("proxy"))
            .collect();
        let proxied: Vec<SocketAddr> = proxies.iter().map(|p| p.local_addr()).collect();

        let sidecars: Vec<DispatcherSidecar> = (0..3)
            .map(|i| {
                DispatcherSidecar::start(
                    sid(i),
                    proxied.clone(),
                    SidecarConfig {
                        ttl: Duration::from_secs(30),
                        tick: Duration::from_millis(5),
                        client: client_cfg(seed ^ (0xD0 + i as u64)),
                        ..SidecarConfig::default()
                    },
                )
            })
            .collect();

        // Subscribe-only channels homed on the victim: they appear in
        // LLA reports (current-subscriber gauge) with zero bytes, so
        // the balancer knows their names but has measured no load.
        let ring = Ring::new(&(0..3).map(sid).collect::<Vec<_>>(), DEFAULT_VNODES);
        let victim = ring.server_for(channel_id_of("cs-00")).index();
        let channels: Vec<String> = (0..)
            .map(|i| format!("cs-{i:02}"))
            .filter(|name| ring.server_for(channel_id_of(name)).index() == victim)
            .take(VICTIM_CHANNELS)
            .collect();

        // ONLY the victim reports. The survivors' egress therefore
        // reads zero at replan time, which is exactly the cold-start
        // total==0 input the old cap computation got wrong. (The
        // balancer keeps the silent survivors as permanent suspects —
        // their probes succeed — which does not block the replan.)
        let victim_reporter = LoadReporter::start(
            brokers[victim].load_handle(),
            victim,
            proxied[victim],
            report_interval,
            client_cfg(seed ^ 0xE0),
        );

        let router_cfg = |s: u64| RouterConfig {
            client: client_cfg(s),
            switch_grace: Duration::from_secs(1),
            failover_after: Duration::from_millis(700),
            probe_timeout: Duration::from_millis(250),
            reprobe_interval: Duration::from_millis(500),
            seed: Some(s),
            ..RouterConfig::default()
        };
        let sub = RoutedClient::connect(proxied.clone(), router_cfg(seed ^ 0xE1));
        let publisher = RoutedClient::connect(proxied.clone(), router_cfg(seed ^ 0xE2));
        for name in &channels {
            sub.subscribe(name);
        }
        wait_until("subscriptions landed", Duration::from_secs(10), || {
            channels
                .iter()
                .all(|name| brokers[victim].channel_subscribers(name) > 0)
        });

        let balancer = LiveLoadBalancer::start(
            proxied.clone(),
            BalancerConfig {
                capacity_floor: 500_000.0,
                tick: Duration::from_millis(100),
                window: 2,
                warmup_ticks: 2,
                install_refresh: Duration::from_secs(2),
                client: client_cfg(seed ^ 0xE3),
                report_interval,
                suspect_after: 3,
                probe_timeout: Duration::from_millis(250),
                ..BalancerConfig::default()
            },
        );
        // The victim's reports must have carried the channel names
        // before the kill, or the replan has nothing to rehome.
        wait_until("victim reported", Duration::from_secs(15), || {
            balancer.stats().reports_received >= 3
        });

        proxies[victim].kill_upstream_hard();

        wait_until("emergency replan", Duration::from_secs(15), || {
            let stats = balancer.stats();
            stats.quarantined.contains(&victim) && stats.emergency_replans >= 1
        });
        let replan = balancer.stats().last_replan.clone().expect("summary");
        assert_eq!(replan.dead, victim);
        assert!(
            replan.channels_moved >= VICTIM_CHANNELS,
            "cold-start replan stranded channels: {replan:?}"
        );
        // The regression: with nothing measured anywhere the cap must
        // be *uncapped*, never zero.
        assert!(
            replan.cap_ratio.is_infinite(),
            "zero-total replan should be uncapped, got cap_ratio {}",
            replan.cap_ratio
        );
        assert!(
            replan.max_survivor_lr <= 1e-9,
            "survivors carried load in a cold-start replan: {replan:?}"
        );

        // The rehomed subscriptions must actually work: publish one
        // body per channel and require full delivery via survivors.
        let mut delivered: HashSet<String> = HashSet::new();
        let mut published: Vec<String> = Vec::new();
        for name in &channels {
            let body = format!("{name}:post-kill");
            publisher.publish(name, body.as_bytes());
            published.push(body);
        }
        wait_until("post-replan delivery", Duration::from_secs(60), || {
            while let Some(msg) = sub.try_message() {
                delivered.insert(String::from_utf8(msg.payload).expect("utf8"));
            }
            while sub.try_event().is_some() {}
            if !published.iter().all(|b| delivered.contains(b)) {
                // Failover re-publish protocol: the tail is retried
                // until the routers settle on survivors.
                for name in &channels {
                    publisher.publish(name, format!("{name}:post-kill").as_bytes());
                }
                std::thread::sleep(Duration::from_millis(50));
                return false;
            }
            true
        });

        balancer.shutdown();
        sub.shutdown();
        publisher.shutdown();
        victim_reporter.shutdown();
        for sidecar in sidecars {
            sidecar.shutdown();
        }
        for proxy in proxies {
            proxy.shutdown();
        }
        for broker in brokers {
            broker.shutdown();
        }
    });
}

/// Quarantine-blind fallback regression: channels first observed *after*
/// a broker death, whose plain-ring home is the corpse, are actually
/// served by the first healthy walk successor. `Plan::resolve`,
/// `Plan::migrate` and `Plan::diff` used to consult the plain ring for
/// them, so the reactive rebalancer either gated its migrations on a
/// home nobody uses (no-op plans) or addressed installs to the corpse.
/// With the quarantine set threaded through, a hot post-mortem channel
/// must produce a real, installed plan change.
#[test]
fn post_mortem_hot_channels_are_rebalanced_off_the_effective_home() {
    with_deadline(240, || {
        let seed = seed();
        let report_interval = Duration::from_millis(100);

        let brokers: Vec<TcpBroker> = (0..3)
            .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
            .collect();
        let direct: Vec<SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
        let proxies: Vec<ChaosProxy> = direct
            .iter()
            .enumerate()
            .map(|(i, &addr)| ChaosProxy::spawn(addr, seed ^ (0xF0 + i as u64)).expect("proxy"))
            .collect();
        let proxied: Vec<SocketAddr> = proxies.iter().map(|p| p.local_addr()).collect();

        let sidecars: Vec<DispatcherSidecar> = (0..3)
            .map(|i| {
                DispatcherSidecar::start(
                    sid(i),
                    proxied.clone(),
                    SidecarConfig {
                        ttl: Duration::from_secs(30),
                        tick: Duration::from_millis(5),
                        client: client_cfg(seed ^ (0x100 + i as u64)),
                        ..SidecarConfig::default()
                    },
                )
            })
            .collect();
        let reporters: Vec<LoadReporter> = brokers
            .iter()
            .enumerate()
            .map(|(i, b)| {
                LoadReporter::start(
                    b.load_handle(),
                    i,
                    proxied[i],
                    report_interval,
                    client_cfg(seed ^ (0x110 + i as u64)),
                )
            })
            .collect();

        let ring = Ring::new(&(0..3).map(sid).collect::<Vec<_>>(), DEFAULT_VNODES);
        let victim = ring.server_for(channel_id_of("pm-00")).index();
        // Channels whose plain home is the victim; after the kill their
        // effective home is each one's first healthy walk successor.
        let channels: Vec<String> = (0..)
            .map(|i| format!("pm-{i:02}"))
            .filter(|name| ring.server_for(channel_id_of(name)).index() == victim)
            .take(VICTIM_CHANNELS)
            .collect();

        let balancer = LiveLoadBalancer::start(
            proxied.clone(),
            BalancerConfig {
                // Low floor so the post-kill traffic genuinely trips the
                // reactive LR_high threshold on the effective home.
                capacity_floor: 50_000.0,
                tick: Duration::from_millis(100),
                window: 2,
                warmup_ticks: 2,
                install_refresh: Duration::from_secs(2),
                client: client_cfg(seed ^ 0x120),
                report_interval,
                suspect_after: 3,
                probe_timeout: Duration::from_millis(250),
                // Pin the *reactive* path: with the pass on, proactive
                // placement would fix the hot spot before Algorithm 2
                // ever exercises the quarantine-aware migrate gate.
                placement_pass: false,
                ..BalancerConfig::default()
            },
        );
        wait_until("all brokers reporting", Duration::from_secs(15), || {
            balancer.stats().reports_received >= 9
        });

        // The kill comes FIRST; the hot channels above have never been
        // published or subscribed, so the emergency replan cannot know
        // them and they stay unmapped.
        proxies[victim].kill_upstream_hard();
        wait_until("death declared", Duration::from_secs(15), || {
            let stats = balancer.stats();
            stats.quarantined.contains(&victim) && stats.deaths_declared >= 1
        });
        let installs_after_replan = balancer.stats().plans_installed;

        let router_cfg = |s: u64| RouterConfig {
            client: client_cfg(s),
            switch_grace: Duration::from_secs(1),
            failover_after: Duration::from_millis(700),
            probe_timeout: Duration::from_millis(250),
            reprobe_interval: Duration::from_millis(500),
            seed: Some(s),
            ..RouterConfig::default()
        };
        let sub = RoutedClient::connect(proxied.clone(), router_cfg(seed ^ 0x121));
        let publisher = RoutedClient::connect(proxied.clone(), router_cfg(seed ^ 0x122));
        for name in &channels {
            sub.subscribe(name);
        }
        // The routers discover the corpse on their own (probe timeout),
        // land the subscriptions on the healthy walk successors, and
        // the post-mortem traffic heats those survivors up.
        let mut delivered: HashSet<String> = HashSet::new();
        let mut published: Vec<String> = Vec::new();
        let mut next = 0usize;
        let deadline = Instant::now() + Duration::from_secs(90);
        loop {
            let stats = balancer.stats();
            if stats.plans_installed > installs_after_replan
                && (stats.high_load_rebalances >= 1 || stats.channel_level_rebalances >= 1)
            {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "reactive rebalancer never produced an installed plan for \
                 post-mortem channels: {stats:?}"
            );
            for name in &channels {
                let mut body = format!("{name}:{next}:");
                body.push_str(&"y".repeat(PAYLOAD.saturating_sub(body.len())));
                publisher.publish(name, body.as_bytes());
                published.push(body);
                next += 1;
            }
            std::thread::sleep(Duration::from_millis(10));
            while let Some(msg) = sub.try_message() {
                delivered.insert(String::from_utf8(msg.payload).expect("utf8"));
            }
            while sub.try_event().is_some() {}
        }

        // Migration must not lose the stream: re-publish the tail (the
        // failover protocol's cue covers the kill window) and require
        // every distinct body to arrive.
        let tail = published.clone();
        for body in &tail {
            let name = body.split(':').next().expect("name prefix");
            publisher.publish(name, body.as_bytes());
        }
        wait_until(
            "zero loss across migration",
            Duration::from_secs(60),
            || {
                while let Some(msg) = sub.try_message() {
                    delivered.insert(String::from_utf8(msg.payload).expect("utf8"));
                }
                while sub.try_event().is_some() {}
                published.iter().all(|b| delivered.contains(b))
            },
        );

        balancer.shutdown();
        sub.shutdown();
        publisher.shutdown();
        for reporter in reporters {
            reporter.shutdown();
        }
        for sidecar in sidecars {
            sidecar.shutdown();
        }
        for proxy in proxies {
            proxy.shutdown();
        }
        for broker in brokers {
            broker.shutdown();
        }
    });
}

/// Satellite: a sidecar peer connection dying mid-migration (old→new
/// forwarding active) must not drop in-flight forwards. The peer client
/// gives up, `SidecarEvent::PeerUnavailable` surfaces, and the stranded
/// frames are rescued onto a fresh connection and delivered once the
/// peer heals.
#[test]
fn sidecar_peer_death_mid_migration_loses_no_forwards() {
    with_deadline(120, || {
        let seed = seed();
        let b0 = TcpBroker::bind("127.0.0.1:0").expect("bind b0");
        let b1 = TcpBroker::bind("127.0.0.1:0").expect("bind b1");
        let proxy1 = ChaosProxy::spawn(b1.local_addr(), seed ^ 0x77).expect("proxy");
        // Sidecar 0 reaches broker 1 only through the proxy; its own
        // broker is direct (colocated).
        let directory = vec![b0.local_addr(), proxy1.local_addr()];

        let sidecar = DispatcherSidecar::start(
            sid(0),
            directory,
            SidecarConfig {
                ttl: Duration::from_secs(60),
                tick: Duration::from_millis(5),
                client: ClientConfig {
                    // A tight budget so the peer outage actually
                    // exhausts it: blackholed connects succeed at the
                    // TCP level but deliver nothing, so the liveness
                    // timeout burns one attempt per ~300 ms.
                    max_reconnect_attempts: Some(2),
                    reconnect_base: Duration::from_millis(10),
                    reconnect_cap: Duration::from_millis(50),
                    connect_timeout: Duration::from_millis(250),
                    heartbeat_interval: Duration::from_millis(100),
                    liveness_timeout: Duration::from_millis(300),
                    tick: Duration::from_millis(5),
                    seed: Some(seed ^ 0x78),
                    ..ClientConfig::default()
                },
                ..SidecarConfig::default()
            },
        );
        sidecar.install(
            ChannelChange {
                channel: "mig".to_owned(),
                old: ChannelMapping::Single(sid(0)),
                new: ChannelMapping::Single(sid(1)),
            },
            PlanId(1),
        );

        // Subscriber sits on the NEW home directly; the stale publisher
        // still publishes to the OLD home, so every delivery crosses
        // the sidecar's old→new forward.
        let subscriber = TcpPubSubClient::connect_addr(b1.local_addr(), client_cfg(seed ^ 0x79));
        subscriber.subscribe("mig");
        let publisher = TcpPubSubClient::connect_addr(b0.local_addr(), client_cfg(seed ^ 0x7A));
        wait_until("subscription landed", Duration::from_secs(10), || {
            b1.channel_subscribers("mig") > 0
        });

        let mut delivered: HashSet<String> = HashSet::new();
        let mut peer_unavailable = false;
        let pump = |delivered: &mut HashSet<String>, peer_unavailable: &mut bool| {
            while let Some(msg) = subscriber.try_message() {
                delivered.insert(String::from_utf8(msg.payload).expect("utf8"));
            }
            while let Some(event) = sidecar.try_event() {
                if event == (SidecarEvent::PeerUnavailable { broker: 1 }) {
                    *peer_unavailable = true;
                }
            }
        };

        // Phase A: the forward path works.
        let mut published: Vec<String> = Vec::new();
        for i in 0..10 {
            let body = format!("pre-{i}");
            publisher.publish("mig", body.as_bytes());
            published.push(body);
            std::thread::sleep(Duration::from_millis(5));
        }
        wait_until("pre-outage forwards", Duration::from_secs(30), || {
            pump(&mut delivered, &mut peer_unavailable);
            published.iter().all(|b| delivered.contains(b))
        });

        // Phase B: the peer dies mid-window — half-open, so the peer
        // client's reconnects succeed at the TCP level and the retry
        // budget drains on liveness timeouts. Frames forwarded during
        // the outage pile up in the dying client.
        proxy1.set_black_hole(true);
        proxy1.reset_all();
        for i in 0..20 {
            let body = format!("mid-{i}");
            publisher.publish("mig", body.as_bytes());
            published.push(body);
            std::thread::sleep(Duration::from_millis(25));
        }
        wait_until("peer gave up", Duration::from_secs(30), || {
            pump(&mut delivered, &mut peer_unavailable);
            peer_unavailable
        });

        // Phase C: the peer heals; the rescued frames must all arrive.
        proxy1.set_black_hole(false);
        proxy1.reset_all();
        for i in 0..10 {
            let body = format!("post-{i}");
            publisher.publish("mig", body.as_bytes());
            published.push(body);
            std::thread::sleep(Duration::from_millis(5));
        }
        wait_until("no forward lost", Duration::from_secs(60), || {
            pump(&mut delivered, &mut peer_unavailable);
            published.iter().all(|b| delivered.contains(b))
        });

        sidecar.shutdown();
        subscriber.shutdown();
        publisher.shutdown();
        proxy1.shutdown();
        b0.shutdown();
        b1.shutdown();
    });
}

/// Quarantine is until-re-report, not forever: a broker that dies is
/// skipped by planning, but once a broker at its address reports again
/// (a restart — by definition a new incarnation) the balancer re-admits
/// it. Also covers the reporter-shutdown satellite: a `LoadReporter`
/// whose broker shuts down exits on its own instead of spinning its
/// reconnect loop.
#[test]
fn dead_broker_is_quarantined_until_it_reports_again() {
    with_deadline(120, || {
        let seed = seed();
        let report_interval = Duration::from_millis(100);
        let mut brokers: Vec<TcpBroker> = (0..2)
            .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
            .collect();
        let direct: Vec<SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
        let mut reporters: Vec<LoadReporter> = brokers
            .iter()
            .enumerate()
            .map(|(i, b)| {
                LoadReporter::start(
                    b.load_handle(),
                    i,
                    direct[i],
                    report_interval,
                    client_cfg(seed ^ (0x90 + i as u64)),
                )
            })
            .collect();
        let balancer = LiveLoadBalancer::start(
            direct.clone(),
            BalancerConfig {
                capacity_floor: 50_000.0,
                tick: Duration::from_millis(100),
                window: 2,
                warmup_ticks: 2,
                client: client_cfg(seed ^ 0x92),
                report_interval,
                suspect_after: 2,
                probe_timeout: Duration::from_millis(250),
                ..BalancerConfig::default()
            },
        );
        wait_until("both brokers reporting", Duration::from_secs(15), || {
            balancer.stats().reports_received >= 6
        });

        // Real broker shutdown (not a proxy): the listener closes, so
        // probes are refused and the reporter's load handle reads
        // shutdown.
        let victim_addr = direct[1];
        let victim = brokers.remove(1);
        victim.shutdown();

        // Satellite: the reporter notices its broker is gone and stops
        // by itself — no reconnect spin, no explicit shutdown() needed.
        let victim_reporter = reporters.remove(1);
        wait_until("reporter self-stopped", Duration::from_secs(10), || {
            victim_reporter.is_finished()
        });

        wait_until("death declared", Duration::from_secs(15), || {
            let stats = balancer.stats();
            stats.deaths_declared >= 1 && stats.quarantined == vec![1]
        });

        // Restart: a fresh broker on the same address (retry the bind —
        // the old listener's port may take a moment to free), plus a
        // fresh reporter. Its reports must lift the quarantine.
        let rebind_deadline = Instant::now() + Duration::from_secs(30);
        let revived = loop {
            match TcpBroker::bind(&victim_addr.to_string()) {
                Ok(b) => break b,
                Err(e) => {
                    assert!(
                        Instant::now() < rebind_deadline,
                        "could not rebind the victim's address: {e}"
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        };
        let revived_reporter = LoadReporter::start(
            revived.load_handle(),
            1,
            victim_addr,
            report_interval,
            client_cfg(seed ^ 0x93),
        );

        wait_until("quarantine lifted", Duration::from_secs(15), || {
            let stats = balancer.stats();
            stats.quarantined.is_empty() && stats.brokers_recovered >= 1
        });

        balancer.shutdown();
        revived_reporter.shutdown();
        for reporter in reporters {
            reporter.shutdown();
        }
        revived.shutdown();
        for broker in brokers {
            broker.shutdown();
        }
    });
}
