//! Regression tests for two control-plane bugs fixed alongside the live
//! balancer:
//!
//! 1. `DispatcherSidecar` used to `expect()` its broker connections at
//!    startup — an unreachable broker aborted the pump thread. It now
//!    rides the client's reconnect machinery, surfaces an exhausted
//!    retry budget as [`SidecarEvent::PeerUnavailable`], and heals once
//!    the broker is reachable again.
//! 2. `RoutedClient` used to record ring-fallback resolutions at the
//!    same plan version its staleness check compared against, so the
//!    *first* control frame for a never-explicitly-mapped channel could
//!    be dropped as stale and the client stayed wedged on the ring
//!    mapping forever. Fallback entries are now provisional (version 0)
//!    and never shadow a real frame.
//! 3. The pump tore the watch down after a `GaveUp` (`watch = None`) but
//!    later code paths still `unwrap()`ed it — an `install()` landing
//!    during the outage panicked the pump thread, killing the sidecar
//!    for good. The watch accessor now rebuilds the client in place
//!    (`get_or_insert_with`), so no path can observe a missing watch.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    channel_id_of, install_channel, ChannelMapping, ChaosProxy, ClientConfig, ControlFrame,
    DispatcherSidecar, PlanId, Ring, RoutedClient, RouterConfig, ServerId, SidecarConfig,
    SidecarEvent, TcpBroker, TcpPubSubClient, DEFAULT_VNODES,
};

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00)
}

/// Hard watchdog: a wedged client, sidecar or broker fails fast.
fn with_deadline(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {secs}s watchdog deadline")
        }
    }
}

/// Polls `pred` until it holds; panics at the deadline.
fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn sid(i: usize) -> ServerId {
    ServerId::from_index(i)
}

/// The sidecar's broker connections go through a `ChaosProxy` that
/// black-holes mid-test. With a finite retry budget the watch gives up;
/// the sidecar must report `PeerUnavailable` (not panic, not wedge) and
/// must rebuild the watch — subscriptions included — once the path
/// heals. Pre-fix, the `expect()` on the initial connect aborted the
/// pump thread outright.
#[test]
fn sidecar_survives_broker_outage_and_reports_it() {
    with_deadline(120, || {
        let seed = seed();
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind broker");
        let proxy = ChaosProxy::spawn(broker.local_addr(), seed).expect("proxy");
        let directory: Vec<SocketAddr> = vec![proxy.local_addr()];

        let cfg = SidecarConfig {
            ttl: Duration::from_secs(10),
            tick: Duration::from_millis(5),
            client: ClientConfig {
                reconnect_base: Duration::from_millis(10),
                reconnect_cap: Duration::from_millis(50),
                connect_timeout: Duration::from_millis(300),
                heartbeat_interval: Duration::from_millis(50),
                liveness_timeout: Duration::from_millis(400),
                tick: Duration::from_millis(5),
                max_reconnect_attempts: Some(2),
                seed: Some(seed),
                ..ClientConfig::default()
            },
            ..SidecarConfig::default()
        };
        let sidecar = DispatcherSidecar::start(sid(0), directory, cfg);

        // The watch comes up eagerly and subscribes its install channel.
        wait_until("watch subscription", Duration::from_secs(10), || {
            broker.channel_subscribers(&install_channel(0)) >= 1
        });

        // Outage: existing connections die and every reconnect attempt
        // lands in a black hole until the retry budget is spent.
        proxy.set_black_hole(true);
        proxy.reset_all();
        wait_until("PeerUnavailable event", Duration::from_secs(30), || {
            matches!(
                sidecar.try_event(),
                Some(SidecarEvent::PeerUnavailable { broker: 0 })
            )
        });

        // Heal the path: the pump rebuilds the watch from scratch and
        // re-subscribes, with no external kick.
        proxy.set_black_hole(false);
        wait_until("watch resubscription", Duration::from_secs(30), || {
            broker.channel_subscribers(&install_channel(0)) >= 1
        });

        // The sidecar is still fully functional: an install takes
        // effect (the watch subscribes the migrated channel).
        sidecar.install(
            dynamoth_pubsub::ChannelChange {
                channel: "migrant".to_owned(),
                old: ChannelMapping::Single(sid(0)),
                new: ChannelMapping::Single(sid(0)),
            },
            PlanId(1),
        );
        wait_until("post-recovery install", Duration::from_secs(10), || {
            broker.channel_subscribers("migrant") >= 1
        });

        sidecar.shutdown();
        proxy.shutdown();
        broker.shutdown();
    });
}

/// An `install()` that lands *while the watch is torn down* (its retry
/// budget spent, `watch == None`) used to hit the pump's
/// `self.watch.as_ref().unwrap()` and abort the thread — the sidecar
/// looked alive but never processed another install. The pump must
/// instead rebuild the watch in place, surface the outage as
/// [`SidecarEvent::PeerUnavailable`], and apply the queued install once
/// the path heals.
#[test]
fn install_during_watch_outage_rebuilds_instead_of_panicking() {
    with_deadline(120, || {
        let seed = seed();
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind broker");
        let proxy = ChaosProxy::spawn(broker.local_addr(), seed ^ 0xA5).expect("proxy");
        let directory: Vec<SocketAddr> = vec![proxy.local_addr()];

        let cfg = SidecarConfig {
            ttl: Duration::from_secs(30),
            tick: Duration::from_millis(5),
            client: ClientConfig {
                reconnect_base: Duration::from_millis(10),
                reconnect_cap: Duration::from_millis(50),
                connect_timeout: Duration::from_millis(300),
                heartbeat_interval: Duration::from_millis(50),
                liveness_timeout: Duration::from_millis(400),
                tick: Duration::from_millis(5),
                max_reconnect_attempts: Some(2),
                seed: Some(seed),
                ..ClientConfig::default()
            },
            ..SidecarConfig::default()
        };
        let sidecar = DispatcherSidecar::start(sid(0), directory, cfg);
        wait_until("watch subscription", Duration::from_secs(10), || {
            broker.channel_subscribers(&install_channel(0)) >= 1
        });

        // Spend the watch's retry budget.
        proxy.set_black_hole(true);
        proxy.reset_all();
        wait_until("PeerUnavailable event", Duration::from_secs(30), || {
            matches!(
                sidecar.try_event(),
                Some(SidecarEvent::PeerUnavailable { broker: 0 })
            )
        });

        // The poison pill: an install while the watch is down. Pre-fix
        // this panicked the pump on the unwrap; post-fix it records the
        // channel state and subscribes once the watch is rebuilt.
        sidecar.install(
            dynamoth_pubsub::ChannelChange {
                channel: "outage-install".to_owned(),
                old: ChannelMapping::Single(sid(0)),
                new: ChannelMapping::Single(sid(0)),
            },
            PlanId(1),
        );
        // The pump is still alive and tracking the install.
        wait_until("install recorded", Duration::from_secs(10), || {
            sidecar.stats().active_channels == 1
        });

        proxy.set_black_hole(false);
        wait_until(
            "post-outage watch and install subscriptions",
            Duration::from_secs(30),
            || {
                broker.channel_subscribers(&install_channel(0)) >= 1
                    && broker.channel_subscribers("outage-install") >= 1
            },
        );

        sidecar.shutdown();
        proxy.shutdown();
        broker.shutdown();
    });
}

/// A channel the router only ever resolved through the ring fallback
/// must still accept its first control frame — even one carrying plan
/// version 0 — and follow later ones. Pre-fix the fallback entry was
/// recorded at the comparison version, so `known >= frame` dropped the
/// frame as stale and the channel never migrated.
#[test]
fn ring_fallback_entries_never_shadow_control_frames() {
    with_deadline(120, || {
        let seed = seed();
        let brokers: Vec<TcpBroker> = (0..2)
            .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
            .collect();
        let directory: Vec<SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();

        let sub = RoutedClient::connect(
            directory.clone(),
            RouterConfig {
                client: ClientConfig {
                    seed: Some(seed),
                    tick: Duration::from_millis(5),
                    ..ClientConfig::default()
                },
                switch_grace: Duration::from_millis(200),
                seed: Some(seed),
                ..RouterConfig::default()
            },
        );

        const CH: &str = "wanderer";
        let ring: Vec<ServerId> = (0..2).map(sid).collect();
        let home = Ring::new(&ring, DEFAULT_VNODES)
            .server_for(channel_id_of(CH))
            .index();
        let other = 1 - home;

        // Subscribing resolves through the ring: a provisional local
        // entry at version 0 on the ring-chosen home.
        sub.subscribe(CH);
        wait_until(
            "ring-fallback subscription",
            Duration::from_secs(10),
            || brokers[home].channel_subscribers(CH) >= 1,
        );
        assert_eq!(
            sub.local_mapping(CH),
            Some((ChannelMapping::Single(sid(home)), PlanId(0)))
        );

        // A switch frame at the *same* version (0) arrives on the
        // channel — exactly what a freshly restarted balancer's first
        // bootstrap-era frame looks like. It must apply.
        let helper = TcpPubSubClient::connect_addr(directory[home], ClientConfig::default());
        let frame = ControlFrame::Switch {
            plan: PlanId(0),
            mapping: ChannelMapping::Single(sid(other)),
            channel: CH.to_owned(),
            quarantine: Vec::new(),
        };
        let target = (ChannelMapping::Single(sid(other)), PlanId(0));
        wait_until("plan-0 switch applied", Duration::from_secs(20), || {
            helper.publish(CH, &frame.encode());
            std::thread::sleep(Duration::from_millis(20));
            sub.local_mapping(CH).as_ref() == Some(&target)
        });
        assert!(sub.stats().switches_applied >= 1);

        // The subscription really moved: traffic published straight to
        // the new home reaches the subscriber.
        wait_until("subscription on new home", Duration::from_secs(10), || {
            brokers[other].channel_subscribers(CH) >= 1
        });
        let publisher = TcpPubSubClient::connect_addr(directory[other], ClientConfig::default());
        publisher.publish(CH, b"over-here");
        wait_until("delivery via new home", Duration::from_secs(10), || {
            while let Some(msg) = sub.try_message() {
                if msg.payload == b"over-here" {
                    return true;
                }
            }
            false
        });

        // Higher-versioned frames still win over the (still
        // provisional) entry, and genuinely stale ones still drop.
        let upgrade = ControlFrame::Switch {
            plan: PlanId(7),
            mapping: ChannelMapping::Single(sid(home)),
            channel: CH.to_owned(),
            quarantine: Vec::new(),
        };
        let target = (ChannelMapping::Single(sid(home)), PlanId(7));
        wait_until("plan-7 switch applied", Duration::from_secs(20), || {
            publisher.publish(CH, &upgrade.encode());
            std::thread::sleep(Duration::from_millis(20));
            sub.local_mapping(CH).as_ref() == Some(&target)
        });
        let stale = ControlFrame::Switch {
            plan: PlanId(3),
            mapping: ChannelMapping::Single(sid(other)),
            channel: CH.to_owned(),
            quarantine: Vec::new(),
        };
        let before = sub.stats().stale_control_frames;
        publisher.publish(CH, &stale.encode());
        wait_until("stale frame counted", Duration::from_secs(10), || {
            sub.stats().stale_control_frames > before
        });
        assert_eq!(sub.local_mapping(CH), Some(target));

        helper.shutdown();
        publisher.shutdown();
        sub.shutdown();
        for broker in brokers {
            broker.shutdown();
        }
    });
}
