//! End-to-end tests of the RESP TCP broker over real sockets: a
//! hand-rolled Redis client subscribes, another publishes, and the
//! message push comes back exactly as Redis would send it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dynamoth_pubsub::resp::{self, Value};
use dynamoth_pubsub::{BrokerConfig, TcpBroker};

struct RespClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RespClient {
    fn connect(addr: std::net::SocketAddr) -> RespClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        RespClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, words: &[&str]) {
        let value = Value::array(words.iter().map(|w| Value::bulk(*w)).collect());
        let mut out = Vec::new();
        resp::encode(&value, &mut out);
        self.stream.write_all(&out).expect("write");
    }

    /// Reads until one full RESP value is available (or panics after 2 s).
    fn recv(&mut self) -> Value {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if let Some((value, used)) = resp::decode(&self.buf).expect("valid resp") {
                self.buf.drain(..used);
                return value;
            }
            assert!(Instant::now() < deadline, "timed out waiting for a frame");
            let mut chunk = [0u8; 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("connection closed"),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("read error: {e}"),
            }
        }
    }
}

#[test]
fn subscribe_publish_roundtrip_over_tcp() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let addr = broker.local_addr();

    let mut subscriber = RespClient::connect(addr);
    subscriber.send(&["SUBSCRIBE", "tile_1"]);
    assert_eq!(
        subscriber.recv(),
        Value::array(vec![
            Value::bulk("subscribe"),
            Value::bulk("tile_1"),
            Value::Integer(1)
        ])
    );

    let mut publisher = RespClient::connect(addr);
    publisher.send(&["PUBLISH", "tile_1", "hello world"]);
    // Redis replies with the number of receivers.
    assert_eq!(publisher.recv(), Value::Integer(1));

    // The subscriber receives the standard message push.
    assert_eq!(
        subscriber.recv(),
        Value::array(vec![
            Value::bulk("message"),
            Value::bulk("tile_1"),
            Value::bulk("hello world"),
        ])
    );
    broker.shutdown();
}

#[test]
fn publish_without_subscribers_returns_zero() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let mut client = RespClient::connect(broker.local_addr());
    client.send(&["PUBLISH", "nowhere", "x"]);
    assert_eq!(client.recv(), Value::Integer(0));
    client.send(&["PING"]);
    assert_eq!(client.recv(), Value::Simple("PONG".into()));
    broker.shutdown();
}

#[test]
fn unsubscribe_stops_deliveries() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let addr = broker.local_addr();
    let mut subscriber = RespClient::connect(addr);
    subscriber.send(&["SUBSCRIBE", "a", "b"]);
    assert_eq!(
        subscriber.recv(),
        resp::subscription_push("subscribe", "a", 1)
    );
    assert_eq!(
        subscriber.recv(),
        resp::subscription_push("subscribe", "b", 2)
    );
    subscriber.send(&["UNSUBSCRIBE", "a"]);
    assert_eq!(
        subscriber.recv(),
        resp::subscription_push("unsubscribe", "a", 1)
    );

    let mut publisher = RespClient::connect(addr);
    publisher.send(&["PUBLISH", "a", "gone"]);
    assert_eq!(publisher.recv(), Value::Integer(0));
    publisher.send(&["PUBLISH", "b", "still here"]);
    assert_eq!(publisher.recv(), Value::Integer(1));
    assert_eq!(subscriber.recv(), resp::message_push("b", b"still here"));
    broker.shutdown();
}

#[test]
fn fanout_reaches_every_subscriber() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let addr = broker.local_addr();
    let mut subs: Vec<RespClient> = (0..5)
        .map(|_| {
            let mut c = RespClient::connect(addr);
            c.send(&["SUBSCRIBE", "room"]);
            assert_eq!(c.recv(), resp::subscription_push("subscribe", "room", 1));
            c
        })
        .collect();
    let mut publisher = RespClient::connect(addr);
    publisher.send(&["PUBLISH", "room", "broadcast"]);
    assert_eq!(publisher.recv(), Value::Integer(5));
    for sub in &mut subs {
        assert_eq!(sub.recv(), resp::message_push("room", b"broadcast"));
    }
    assert_eq!(broker.connections_accepted(), 6);
    broker.shutdown();
}

#[test]
fn protocol_errors_are_reported() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let mut client = RespClient::connect(broker.local_addr());
    client.send(&["GET", "key"]);
    match client.recv() {
        Value::Error(msg) => assert!(msg.contains("unknown command"), "{msg}"),
        other => panic!("expected an error, got {other:?}"),
    }
    broker.shutdown();
}

/// Regression: the seed broker keyed its fan-out index by a 64-bit FNV
/// hash of the name (`intern()`), so two colliding names silently
/// cross-delivered. The index is now keyed by the full name and the
/// hash only picks a shard — with a single shard, every pair of names
/// is a forced hash-bucket collision, and deliveries must still stay
/// per-channel.
#[test]
fn colliding_channel_hashes_do_not_cross_deliver() {
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            shards: 1,
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();

    let mut sub_a = RespClient::connect(addr);
    sub_a.send(&["SUBSCRIBE", "alpha"]);
    assert_eq!(
        sub_a.recv(),
        resp::subscription_push("subscribe", "alpha", 1)
    );
    let mut sub_b = RespClient::connect(addr);
    sub_b.send(&["SUBSCRIBE", "bravo"]);
    assert_eq!(
        sub_b.recv(),
        resp::subscription_push("subscribe", "bravo", 1)
    );

    let mut publisher = RespClient::connect(addr);
    publisher.send(&["PUBLISH", "alpha", "only-a"]);
    assert_eq!(publisher.recv(), Value::Integer(1), "exactly one receiver");
    publisher.send(&["PUBLISH", "bravo", "only-b"]);
    assert_eq!(publisher.recv(), Value::Integer(1), "exactly one receiver");

    assert_eq!(sub_a.recv(), resp::message_push("alpha", b"only-a"));
    assert_eq!(sub_b.recv(), resp::message_push("bravo", b"only-b"));
    // Neither saw the other channel's message.
    let deadline = Instant::now() + Duration::from_millis(300);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(30));
    }
    for (sub, name) in [(&mut sub_a, "alpha"), (&mut sub_b, "bravo")] {
        let mut chunk = [0u8; 256];
        match sub.stream.read(&mut chunk) {
            Ok(0) => panic!("{name} subscriber disconnected"),
            Ok(_) => panic!("{name} subscriber received a cross-delivered frame"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read error: {e}"),
        }
    }
    broker.shutdown();
}

#[test]
fn disconnect_cleans_up_subscriptions() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let addr = broker.local_addr();
    {
        let mut subscriber = RespClient::connect(addr);
        subscriber.send(&["SUBSCRIBE", "temp"]);
        assert_eq!(
            subscriber.recv(),
            resp::subscription_push("subscribe", "temp", 1)
        );
        assert_eq!(broker.subscription_count(), 1);
        // Dropped here: the TCP connection closes.
    }
    // The broker notices the close and removes the registration.
    let deadline = Instant::now() + Duration::from_secs(2);
    while broker.subscription_count() > 0 {
        assert!(
            Instant::now() < deadline,
            "stale subscription never cleaned"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut publisher = RespClient::connect(addr);
    publisher.send(&["PUBLISH", "temp", "x"]);
    assert_eq!(publisher.recv(), Value::Integer(0));
    broker.shutdown();
}
