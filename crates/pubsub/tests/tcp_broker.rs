//! End-to-end tests of the RESP TCP broker over real sockets: a
//! hand-rolled Redis client subscribes, another publishes, and the
//! message push comes back exactly as Redis would send it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dynamoth_pubsub::resp::{self, Value};
use dynamoth_pubsub::{BrokerConfig, OverflowPolicy, TcpBroker};

struct RespClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RespClient {
    fn connect(addr: std::net::SocketAddr) -> RespClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        RespClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, words: &[&str]) {
        let value = Value::array(words.iter().map(|w| Value::bulk(*w)).collect());
        let mut out = Vec::new();
        resp::encode(&value, &mut out);
        self.stream.write_all(&out).expect("write");
    }

    /// Reads until one full RESP value is available (or panics after 2 s).
    fn recv(&mut self) -> Value {
        self.try_recv(Duration::from_secs(2))
            .expect("timed out waiting for a frame")
    }

    /// Like [`recv`](Self::recv), but returns `None` at the deadline or
    /// on a closed connection instead of panicking.
    fn try_recv(&mut self, timeout: Duration) -> Option<Value> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some((value, used)) = resp::decode(&self.buf).expect("valid resp") {
                self.buf.drain(..used);
                return Some(value);
            }
            if Instant::now() >= deadline {
                return None;
            }
            let mut chunk = [0u8; 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("read error: {e}"),
            }
        }
    }
}

#[test]
fn subscribe_publish_roundtrip_over_tcp() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let addr = broker.local_addr();

    let mut subscriber = RespClient::connect(addr);
    subscriber.send(&["SUBSCRIBE", "tile_1"]);
    assert_eq!(
        subscriber.recv(),
        Value::array(vec![
            Value::bulk("subscribe"),
            Value::bulk("tile_1"),
            Value::Integer(1)
        ])
    );

    let mut publisher = RespClient::connect(addr);
    publisher.send(&["PUBLISH", "tile_1", "hello world"]);
    // Redis replies with the number of receivers.
    assert_eq!(publisher.recv(), Value::Integer(1));

    // The subscriber receives the standard message push.
    assert_eq!(
        subscriber.recv(),
        Value::array(vec![
            Value::bulk("message"),
            Value::bulk("tile_1"),
            Value::bulk("hello world"),
        ])
    );
    broker.shutdown();
}

#[test]
fn publish_without_subscribers_returns_zero() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let mut client = RespClient::connect(broker.local_addr());
    client.send(&["PUBLISH", "nowhere", "x"]);
    assert_eq!(client.recv(), Value::Integer(0));
    client.send(&["PING"]);
    assert_eq!(client.recv(), Value::Simple("PONG".into()));
    broker.shutdown();
}

#[test]
fn unsubscribe_stops_deliveries() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let addr = broker.local_addr();
    let mut subscriber = RespClient::connect(addr);
    subscriber.send(&["SUBSCRIBE", "a", "b"]);
    assert_eq!(
        subscriber.recv(),
        resp::subscription_push("subscribe", "a", 1)
    );
    assert_eq!(
        subscriber.recv(),
        resp::subscription_push("subscribe", "b", 2)
    );
    subscriber.send(&["UNSUBSCRIBE", "a"]);
    assert_eq!(
        subscriber.recv(),
        resp::subscription_push("unsubscribe", "a", 1)
    );

    let mut publisher = RespClient::connect(addr);
    publisher.send(&["PUBLISH", "a", "gone"]);
    assert_eq!(publisher.recv(), Value::Integer(0));
    publisher.send(&["PUBLISH", "b", "still here"]);
    assert_eq!(publisher.recv(), Value::Integer(1));
    assert_eq!(subscriber.recv(), resp::message_push("b", b"still here"));
    broker.shutdown();
}

#[test]
fn fanout_reaches_every_subscriber() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let addr = broker.local_addr();
    let mut subs: Vec<RespClient> = (0..5)
        .map(|_| {
            let mut c = RespClient::connect(addr);
            c.send(&["SUBSCRIBE", "room"]);
            assert_eq!(c.recv(), resp::subscription_push("subscribe", "room", 1));
            c
        })
        .collect();
    let mut publisher = RespClient::connect(addr);
    publisher.send(&["PUBLISH", "room", "broadcast"]);
    assert_eq!(publisher.recv(), Value::Integer(5));
    for sub in &mut subs {
        assert_eq!(sub.recv(), resp::message_push("room", b"broadcast"));
    }
    assert_eq!(broker.connections_accepted(), 6);
    broker.shutdown();
}

#[test]
fn protocol_errors_are_reported() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let mut client = RespClient::connect(broker.local_addr());
    client.send(&["GET", "key"]);
    match client.recv() {
        Value::Error(msg) => assert!(msg.contains("unknown command"), "{msg}"),
        other => panic!("expected an error, got {other:?}"),
    }
    broker.shutdown();
}

/// Regression: the seed broker keyed its fan-out index by a 64-bit FNV
/// hash of the name (`intern()`), so two colliding names silently
/// cross-delivered. The index is now keyed by the full name and the
/// hash only picks a shard — with a single shard, every pair of names
/// is a forced hash-bucket collision, and deliveries must still stay
/// per-channel.
#[test]
fn colliding_channel_hashes_do_not_cross_deliver() {
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            shards: 1,
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();

    let mut sub_a = RespClient::connect(addr);
    sub_a.send(&["SUBSCRIBE", "alpha"]);
    assert_eq!(
        sub_a.recv(),
        resp::subscription_push("subscribe", "alpha", 1)
    );
    let mut sub_b = RespClient::connect(addr);
    sub_b.send(&["SUBSCRIBE", "bravo"]);
    assert_eq!(
        sub_b.recv(),
        resp::subscription_push("subscribe", "bravo", 1)
    );

    let mut publisher = RespClient::connect(addr);
    publisher.send(&["PUBLISH", "alpha", "only-a"]);
    assert_eq!(publisher.recv(), Value::Integer(1), "exactly one receiver");
    publisher.send(&["PUBLISH", "bravo", "only-b"]);
    assert_eq!(publisher.recv(), Value::Integer(1), "exactly one receiver");

    assert_eq!(sub_a.recv(), resp::message_push("alpha", b"only-a"));
    assert_eq!(sub_b.recv(), resp::message_push("bravo", b"only-b"));
    // Neither saw the other channel's message.
    let deadline = Instant::now() + Duration::from_millis(300);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(30));
    }
    for (sub, name) in [(&mut sub_a, "alpha"), (&mut sub_b, "bravo")] {
        let mut chunk = [0u8; 256];
        match sub.stream.read(&mut chunk) {
            Ok(0) => panic!("{name} subscriber disconnected"),
            Ok(_) => panic!("{name} subscriber received a cross-delivered frame"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read error: {e}"),
        }
    }
    broker.shutdown();
}

/// Floods a subscriber with `count` payloads of `size` bytes, asserting
/// every publish reply reports `receivers`.
fn flood(publisher: &mut RespClient, channel: &str, count: usize, size: usize, receivers: i64) {
    let payload = "x".repeat(size);
    for _ in 0..count {
        publisher.send(&["PUBLISH", channel, &payload]);
        assert_eq!(publisher.recv(), Value::Integer(receivers));
    }
}

/// Reads message pushes from `sub` until EOF, returning how many
/// arrived. Panics if the stream stays silent past `deadline`.
fn count_messages_until_eof(mut sub: RespClient, deadline: Instant) -> u64 {
    let mut count = 0u64;
    let mut chunk = [0u8; 64 * 1024];
    loop {
        while let Some((value, used)) = resp::decode(&sub.buf).expect("valid resp") {
            sub.buf.drain(..used);
            let is_message = matches!(
                &value,
                Value::Array(Some(items))
                    if matches!(items.first(), Some(Value::Bulk(Some(k))) if k == b"message")
            );
            assert!(is_message, "unexpected frame: {value:?}");
            count += 1;
        }
        match sub.stream.read(&mut chunk) {
            Ok(0) => return count,
            Ok(n) => sub.buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                assert!(Instant::now() < deadline, "drained stream never closed");
            }
            Err(_) => return count,
        }
    }
}

/// Graceful shutdown drains queued frames: a subscriber that only
/// starts reading *after* shutdown begins still receives every single
/// message, and the broker reports zero dropped frames.
#[test]
fn shutdown_drains_queued_frames_to_a_catching_up_subscriber() {
    const MESSAGES: usize = 4_000;
    const SIZE: usize = 8 * 1024; // 32 MiB total — far beyond kernel buffers
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            outbox_limit_bytes: 64 * 1024 * 1024,
            shutdown_drain_timeout: Duration::from_secs(10),
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();

    let mut subscriber = RespClient::connect(addr);
    subscriber.send(&["SUBSCRIBE", "drain"]);
    assert_eq!(
        subscriber.recv(),
        resp::subscription_push("subscribe", "drain", 1)
    );
    // The subscriber stops reading; the backlog piles up in its outbox.
    let mut publisher = RespClient::connect(addr);
    flood(&mut publisher, "drain", MESSAGES, SIZE, 1);

    // Start reading 100 ms into the shutdown drain.
    let reader = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        count_messages_until_eof(subscriber, Instant::now() + Duration::from_secs(20))
    });
    let stats = broker.shutdown();
    let received = reader.join().unwrap();

    assert_eq!(stats.frames_dropped, 0, "drain abandoned frames");
    assert!(stats.frames_flushed > 0, "nothing was queued at shutdown");
    assert_eq!(received as usize, MESSAGES, "drained delivery lost frames");
}

/// A subscriber that never reads cannot be drained: shutdown still
/// completes within the configured deadline and reports the abandoned
/// frames as dropped instead of hanging forever.
#[test]
fn shutdown_drops_undrainable_frames_at_the_deadline() {
    const MESSAGES: usize = 4_000;
    const SIZE: usize = 8 * 1024;
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            outbox_limit_bytes: 64 * 1024 * 1024,
            shutdown_drain_timeout: Duration::from_millis(200),
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();

    let mut subscriber = RespClient::connect(addr);
    subscriber.send(&["SUBSCRIBE", "stuck"]);
    assert_eq!(
        subscriber.recv(),
        resp::subscription_push("subscribe", "stuck", 1)
    );
    let mut publisher = RespClient::connect(addr);
    flood(&mut publisher, "stuck", MESSAGES, SIZE, 1);

    let started = Instant::now();
    let stats = broker.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown took {:?} despite a 200ms drain deadline",
        started.elapsed()
    );
    assert!(
        stats.frames_dropped > 0,
        "a never-reading subscriber cannot have been fully drained"
    );
    drop(subscriber);
}

/// Under `DropOldest` a subscriber that cannot keep up sees gaps, not a
/// disconnect: the flood sheds frames (counted per connection and
/// broker-wide), nobody is killed, and the connection keeps working
/// once the subscriber catches up.
#[test]
fn drop_oldest_sheds_without_killing_and_counters_match() {
    const MESSAGES: usize = 2_000;
    const SIZE: usize = 8 * 1024;
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            outbox_limit_bytes: 32 * 1024,
            overflow_policy: OverflowPolicy::DropOldest,
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();

    let mut subscriber = RespClient::connect(addr);
    subscriber.send(&["SUBSCRIBE", "firehose"]);
    assert_eq!(
        subscriber.recv(),
        resp::subscription_push("subscribe", "firehose", 1)
    );
    // The subscriber stops reading; every publish reply must keep
    // reporting one receiver — the whole point of DropOldest.
    let mut publisher = RespClient::connect(addr);
    flood(&mut publisher, "firehose", MESSAGES, SIZE, 1);

    let health = broker.health();
    assert_eq!(health.overflow_kills, 0, "DropOldest must not kill");
    assert!(health.dropped_frames > 0, "the flood cannot have fit");
    assert_eq!(health.subscriptions, 1);
    assert_eq!(health.connections_live, 2);
    // The shed frames are attributed to the slow connection.
    let drops = broker.per_connection_drops();
    assert_eq!(
        drops.iter().filter(|(_, d)| *d > 0).count(),
        1,
        "exactly one connection shed frames: {drops:?}"
    );
    assert_eq!(
        drops.iter().map(|(_, d)| d).sum::<u64>(),
        health.dropped_frames
    );

    // The connection survived: a marker published now reaches the
    // subscriber once it drains the (bounded) backlog.
    publisher.send(&["PUBLISH", "firehose", "final"]);
    assert_eq!(publisher.recv(), Value::Integer(1));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "marker never arrived");
        let Some(value) = subscriber.try_recv(Duration::from_millis(200)) else {
            continue;
        };
        let Value::Array(Some(items)) = &value else {
            panic!("unexpected frame: {value:?}");
        };
        if let Some(Value::Bulk(Some(payload))) = items.get(2) {
            if payload == b"final" {
                break;
            }
        }
    }
    broker.shutdown();
}

#[test]
fn disconnect_cleans_up_subscriptions() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    let addr = broker.local_addr();
    {
        let mut subscriber = RespClient::connect(addr);
        subscriber.send(&["SUBSCRIBE", "temp"]);
        assert_eq!(
            subscriber.recv(),
            resp::subscription_push("subscribe", "temp", 1)
        );
        assert_eq!(broker.subscription_count(), 1);
        // Dropped here: the TCP connection closes.
    }
    // The broker notices the close and removes the registration.
    let deadline = Instant::now() + Duration::from_secs(2);
    while broker.subscription_count() > 0 {
        assert!(
            Instant::now() < deadline,
            "stale subscription never cleaned"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut publisher = RespClient::connect(addr);
    publisher.send(&["PUBLISH", "temp", "x"]);
    assert_eq!(publisher.recv(), Value::Integer(0));
    broker.shutdown();
}
