//! Connection-scale smoke test for the reactor core: ~10k concurrent
//! connections served by a fixed number of event-loop threads, with an
//! exact-delivery fan-out check.
//!
//! This lives in its own test binary so the thread-count assertion is
//! not polluted by sibling tests running brokers in parallel.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dynamoth_pubsub::resp::{self, Value};
use dynamoth_pubsub::{BrokerConfig, TcpBroker};

const IO_LOOPS: usize = 2;
const TARGET_CONNS: usize = 10_000;

/// Current thread count of this process, from `/proc/self/status`.
fn threads_now() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

/// Soft fd limit of this process, from `/proc/self/limits`.
fn fd_soft_limit() -> usize {
    let limits = std::fs::read_to_string("/proc/self/limits").expect("read /proc/self/limits");
    let line = limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .expect("Max open files line");
    let fields: Vec<&str> = line.split_whitespace().collect();
    // "Max open files <soft> <hard> files"
    fields[3].parse().expect("soft fd limit")
}

struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, words: &[&str]) {
        let value = Value::array(words.iter().map(|w| Value::bulk(*w)).collect());
        let mut out = Vec::new();
        resp::encode(&value, &mut out);
        self.stream.write_all(&out).expect("write");
    }

    fn recv(&mut self, timeout: Duration) -> Value {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some((value, used)) = resp::decode(&self.buf).expect("valid resp") {
                self.buf.drain(..used);
                return value;
            }
            assert!(Instant::now() < deadline, "timed out waiting for a frame");
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("broker closed the connection"),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("read error: {e}"),
            }
        }
    }
}

/// 10k connections (clamped to the process fd budget), all subscribed
/// to one channel; a single publish reaches every one of them, exactly
/// once, while the broker's thread count stays pinned at `io_loops` —
/// no thread-per-connection anywhere.
#[test]
fn ten_thousand_connections_one_fan_out() {
    // Both socket ends live in this process, so each connection costs
    // two fds; leave 256 for the broker's epoll/eventfd plumbing, the
    // listener, and whatever the test harness has open.
    let budget = fd_soft_limit().saturating_sub(256) / 2;
    let conns = TARGET_CONNS.min(budget);
    assert!(
        conns >= 1_000,
        "fd limit too low for a meaningful scale test: budget {budget}"
    );

    let threads_before = threads_now();
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            io_loops: IO_LOOPS,
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    assert_eq!(
        threads_now() - threads_before,
        IO_LOOPS,
        "broker must spawn exactly io_loops threads (accept rides on loop 0)"
    );
    let addr = broker.local_addr();

    let mut subs: Vec<Client> = Vec::with_capacity(conns);
    for i in 0..conns {
        let mut c = Client::connect(addr);
        c.send(&["SUBSCRIBE", "all"]);
        let ack = c.recv(Duration::from_secs(10));
        assert_eq!(
            ack,
            resp::subscription_push("subscribe", "all", 1),
            "bad ack for connection {i}"
        );
        subs.push(c);
    }

    // Still no per-connection threads after `conns` accepts.
    assert_eq!(
        threads_now() - threads_before,
        IO_LOOPS,
        "thread count grew with connections"
    );
    let health = broker.health();
    assert_eq!(health.open_connections, conns);
    assert!(health.peak_connections >= conns);
    assert_eq!(broker.channel_subscribers("all"), conns);

    // One publish fans out to every subscriber; the broker's reply is
    // the exact receiver count.
    let mut publisher = Client::connect(addr);
    publisher.send(&["PUBLISH", "all", "tick"]);
    let reply = publisher.recv(Duration::from_secs(10));
    assert_eq!(reply, Value::Integer(conns as i64), "fan-out undercounted");

    // Every subscriber sees the message exactly once.
    let expected = resp::message_push("all", b"tick");
    for (i, c) in subs.iter_mut().enumerate() {
        let push = c.recv(Duration::from_secs(30));
        assert_eq!(push, expected, "connection {i} got a wrong frame");
    }

    let flush = broker.flush_stats();
    // conns acks + conns pushes + 1 reply, at least — and nothing
    // pathological like a syscall storm per frame.
    assert!(flush.frames >= 2 * conns as u64 + 1);
    assert!(flush.writes <= flush.frames * 2);

    broker.shutdown();
}
