//! Multi-threaded stress tests of the sharded TCP broker: concurrent
//! publishers and subscribers with subscription churn, asserting exact
//! per-channel delivery counts, per-publisher FIFO order, and that a
//! slow-subscriber overflow kills exactly the overflowing connection.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dynamoth_pubsub::resp::{self, Value};
use dynamoth_pubsub::{BrokerConfig, TcpBroker};

struct RespClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RespClient {
    fn connect(addr: std::net::SocketAddr) -> RespClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        RespClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, words: &[&str]) {
        let value = Value::array(words.iter().map(|w| Value::bulk(*w)).collect());
        let mut out = Vec::new();
        resp::encode(&value, &mut out);
        self.stream.write_all(&out).expect("write");
    }

    fn recv(&mut self) -> Value {
        self.try_recv(Duration::from_secs(10))
            .expect("timed out waiting for a frame")
    }

    fn try_recv(&mut self, timeout: Duration) -> Option<Value> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some((value, used)) = resp::decode(&self.buf).expect("valid resp") {
                self.buf.drain(..used);
                return Some(value);
            }
            if Instant::now() >= deadline {
                return None;
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return None,
            }
        }
    }
}

/// Decodes a `message` push into `(channel, payload)`.
fn as_message(value: &Value) -> Option<(String, String)> {
    let Value::Array(Some(items)) = value else {
        return None;
    };
    match items.as_slice() {
        [Value::Bulk(Some(kind)), Value::Bulk(Some(ch)), Value::Bulk(Some(payload))]
            if kind == b"message" =>
        {
            Some((
                String::from_utf8(ch.clone()).unwrap(),
                String::from_utf8(payload.clone()).unwrap(),
            ))
        }
        _ => None,
    }
}

/// Concurrent publishers and churning subscribers: stable subscribers
/// must receive exactly every message of their channel, in per-publisher
/// FIFO order, despite other connections subscribing/unsubscribing on
/// the same shards throughout.
#[test]
fn concurrent_churn_preserves_counts_and_publisher_fifo() {
    const PUBLISHERS: usize = 4;
    const MSGS_PER_PUBLISHER: usize = 200;
    const CHANNELS: usize = 3;

    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            shards: 4, // force shard sharing between the 3 channels
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();

    // Stable subscribers: two per channel, registered before publishing
    // starts, so their expected count is exact.
    let mut stable: Vec<(usize, RespClient)> = Vec::new();
    for ch in 0..CHANNELS {
        for _ in 0..2 {
            let mut c = RespClient::connect(addr);
            c.send(&["SUBSCRIBE", &format!("stress-{ch}")]);
            let ack = c.recv();
            assert_eq!(
                ack,
                resp::subscription_push("subscribe", &format!("stress-{ch}"), 1)
            );
            stable.push((ch, c));
        }
    }

    // Churners: keep subscribing/unsubscribing on every channel while
    // the publishers run, to stress the clone-and-swap writers.
    let stop = Arc::new(AtomicBool::new(false));
    let churners: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = RespClient::connect(addr);
                let mut acks = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for ch in 0..CHANNELS {
                        c.send(&["SUBSCRIBE", &format!("stress-{ch}")]);
                        c.send(&["UNSUBSCRIBE", &format!("stress-{ch}")]);
                        acks += 2;
                    }
                    // Drain acks and any pushes that raced in.
                    while acks > 0 && c.try_recv(Duration::from_millis(200)).is_some() {
                        acks -= 1;
                    }
                }
            })
        })
        .collect();

    // Publishers: each thread owns one channel and publishes an ordered
    // sequence; payload encodes (publisher, seq) for the FIFO check.
    let publishers: Vec<_> = (0..PUBLISHERS)
        .map(|p| {
            std::thread::spawn(move || {
                let mut c = RespClient::connect(addr);
                let channel = format!("stress-{}", p % CHANNELS);
                for seq in 0..MSGS_PER_PUBLISHER {
                    c.send(&["PUBLISH", &channel, &format!("p{p}:{seq}")]);
                    // Reading each reply keeps at most one publish in
                    // flight, so this thread's pushes are FIFO.
                    match c.recv() {
                        Value::Integer(n) => assert!(n >= 2, "stable subscribers were killed"),
                        other => panic!("expected integer reply, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for p in publishers {
        p.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for c in churners {
        c.join().unwrap();
    }

    // Every stable subscriber receives exactly the messages of its
    // channel: right count, no duplicates, per-publisher seq strictly
    // sequential (FIFO).
    let pubs_per_channel =
        PUBLISHERS / CHANNELS + usize::from(!PUBLISHERS.is_multiple_of(CHANNELS));
    for (ch, client) in &mut stable {
        let my_channel = format!("stress-{ch}");
        let expected = (0..PUBLISHERS).filter(|p| p % CHANNELS == *ch).count() * MSGS_PER_PUBLISHER;
        assert!(expected > 0 && pubs_per_channel > 0);
        let mut next_seq: HashMap<String, usize> = HashMap::new();
        let mut received = 0usize;
        while received < expected {
            let value = client
                .try_recv(Duration::from_secs(10))
                .unwrap_or_else(|| panic!("channel {my_channel}: only {received}/{expected}"));
            let (channel, payload) = as_message(&value).expect("message push");
            assert_eq!(channel, my_channel, "cross-channel delivery");
            let (publisher, seq) = payload.split_once(':').expect("payload format");
            let seq: usize = seq.parse().unwrap();
            let next = next_seq.entry(publisher.to_owned()).or_insert(0);
            assert_eq!(seq, *next, "out-of-order delivery from {publisher}");
            *next += 1;
            received += 1;
        }
        // Nothing extra: no duplicates, no cross-delivery.
        assert!(
            client.try_recv(Duration::from_millis(200)).is_none(),
            "channel {my_channel}: received more than the expected {expected}"
        );
    }
    broker.shutdown();
}

/// A subscriber that stops reading must overflow its byte-budgeted
/// outbox and be disconnected — and only it: a fast subscriber of the
/// same channel keeps receiving every message.
#[test]
fn overflow_kills_exactly_the_slow_connection() {
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            outbox_limit_bytes: 64 * 1024,
            shards: 2,
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();

    let mut fast = RespClient::connect(addr);
    fast.send(&["SUBSCRIBE", "firehose"]);
    assert_eq!(
        fast.recv(),
        resp::subscription_push("subscribe", "firehose", 1)
    );

    let mut slow = RespClient::connect(addr);
    slow.send(&["SUBSCRIBE", "firehose"]);
    assert_eq!(
        slow.recv(),
        resp::subscription_push("subscribe", "firehose", 1)
    );
    // From here on, `slow` never reads again.

    // Fast side drains continuously on its own thread and counts pushes.
    let fast_done = Arc::new(AtomicBool::new(false));
    let fast_counter = {
        let fast_done = Arc::clone(&fast_done);
        std::thread::spawn(move || {
            let mut count = 0u64;
            loop {
                match fast.try_recv(Duration::from_millis(300)) {
                    Some(v) => {
                        assert!(as_message(&v).is_some());
                        count += 1;
                    }
                    None if fast_done.load(Ordering::Relaxed) => break,
                    None => {}
                }
            }
            count
        })
    };

    // Publish 16 KiB payloads until the broker reports only one
    // receiver left (the slow connection was killed), bounded so a
    // regression fails instead of hanging.
    let payload = "x".repeat(16 * 1024);
    let mut publisher = RespClient::connect(addr);
    let mut published = 0u64;
    let mut receivers = 2;
    for _ in 0..4_000 {
        publisher.send(&["PUBLISH", "firehose", &payload]);
        published += 1;
        match publisher.recv() {
            Value::Integer(n) => {
                receivers = n;
                if n == 1 {
                    break;
                }
                assert_eq!(n, 2, "unexpected receiver count");
            }
            other => panic!("expected integer reply, got {other:?}"),
        }
    }
    assert_eq!(receivers, 1, "slow subscriber was never killed");

    // Exactly the slow connection died: its registration is gone, the
    // fast one still works and has received every single message.
    let deadline = Instant::now() + Duration::from_secs(5);
    while broker.subscription_count() > 1 {
        assert!(Instant::now() < deadline, "slow subscription never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(broker.subscription_count(), 1);

    publisher.send(&["PUBLISH", "firehose", "after-kill"]);
    assert_eq!(publisher.recv(), Value::Integer(1));
    published += 1;

    // Wait for the fast side to drain everything, then stop counting.
    std::thread::sleep(Duration::from_millis(500));
    fast_done.store(true, Ordering::Relaxed);
    let fast_count = fast_counter.join().unwrap();
    assert_eq!(fast_count, published, "fast subscriber lost messages");

    // Flush accounting stays sane under pressure. This workload keeps
    // one publish in flight, so there is nothing to coalesce (ratio
    // ~1.0), and a frame dribbled into the slow connection's full
    // socket buffer legitimately costs a few continuation syscalls —
    // but never syscall-per-byte blowup.
    let stats = broker.flush_stats();
    assert!(stats.frames > 0);
    assert!(
        stats.writes <= stats.frames * 2,
        "pathological flushing: {} writes for {} frames",
        stats.writes,
        stats.frames
    );
    broker.shutdown();
}
