//! Property tests for the RESP codec: arbitrary values round-trip,
//! arbitrary prefixes never decode spuriously, and arbitrary garbage
//! never panics.

use dynamoth_pubsub::resp::{decode, encode, parse_command, Command, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Simple),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Error),
        any::<i64>().prop_map(Value::Integer),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|v| Value::Bulk(Some(v))),
        Just(Value::Bulk(None)),
        Just(Value::Array(None)),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop::collection::vec(inner, 0..6).prop_map(|items| Value::Array(Some(items)))
    })
}

proptest! {
    /// encode → decode is the identity and consumes exactly the frame.
    #[test]
    fn roundtrip(value in arb_value()) {
        let mut buf = Vec::new();
        encode(&value, &mut buf);
        let (decoded, used) = decode(&buf).expect("valid").expect("complete");
        prop_assert_eq!(decoded, value);
        prop_assert_eq!(used, buf.len());
    }

    /// No strict prefix of a frame ever decodes to a full value, and
    /// appending unrelated bytes after a frame does not change what the
    /// first decode returns.
    #[test]
    fn framing_is_exact(value in arb_value(), suffix in prop::collection::vec(any::<u8>(), 0..16)) {
        let mut buf = Vec::new();
        encode(&value, &mut buf);
        for cut in 0..buf.len() {
            prop_assert_eq!(decode(&buf[..cut]).expect("prefix is not an error"), None);
        }
        let mut extended = buf.clone();
        extended.extend_from_slice(&suffix);
        let (decoded, used) = decode(&extended).expect("valid").expect("complete");
        prop_assert_eq!(decoded, value);
        prop_assert_eq!(used, buf.len());
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
    }

    /// PUBLISH commands round-trip through the codec and the parser.
    #[test]
    fn publish_commands_parse(
        channel in "[a-zA-Z0-9_]{1,16}",
        payload in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let cmd = Value::array(vec![
            Value::bulk("PUBLISH"),
            Value::bulk(channel.as_bytes().to_vec()),
            Value::Bulk(Some(payload.clone())),
        ]);
        let mut buf = Vec::new();
        encode(&cmd, &mut buf);
        let (decoded, _) = decode(&buf).unwrap().unwrap();
        prop_assert_eq!(
            parse_command(&decoded).unwrap(),
            Command::Publish(channel, payload)
        );
    }
}
