//! Property tests for the RESP codec: arbitrary values round-trip,
//! arbitrary prefixes never decode spuriously, and arbitrary garbage
//! never panics.

use dynamoth_pubsub::resp::{decode, encode, parse_command, Command, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Simple),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Error),
        any::<i64>().prop_map(Value::Integer),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|v| Value::Bulk(Some(v))),
        Just(Value::Bulk(None)),
        Just(Value::Array(None)),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop::collection::vec(inner, 0..6).prop_map(|items| Value::Array(Some(items)))
    })
}

proptest! {
    /// encode → decode is the identity and consumes exactly the frame.
    #[test]
    fn roundtrip(value in arb_value()) {
        let mut buf = Vec::new();
        encode(&value, &mut buf);
        let (decoded, used) = decode(&buf).expect("valid").expect("complete");
        prop_assert_eq!(decoded, value);
        prop_assert_eq!(used, buf.len());
    }

    /// No strict prefix of a frame ever decodes to a full value, and
    /// appending unrelated bytes after a frame does not change what the
    /// first decode returns.
    #[test]
    fn framing_is_exact(value in arb_value(), suffix in prop::collection::vec(any::<u8>(), 0..16)) {
        let mut buf = Vec::new();
        encode(&value, &mut buf);
        for cut in 0..buf.len() {
            prop_assert_eq!(decode(&buf[..cut]).expect("prefix is not an error"), None);
        }
        let mut extended = buf.clone();
        extended.extend_from_slice(&suffix);
        let (decoded, used) = decode(&extended).expect("valid").expect("complete");
        prop_assert_eq!(decoded, value);
        prop_assert_eq!(used, buf.len());
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
    }

    /// Regression for the fault-injection path: a frame truncated at
    /// *any* byte boundary — what a chaos-killed connection leaves in
    /// the read buffer — never panics and never decodes to a value,
    /// even with arbitrary garbage appended after the cut (the next
    /// doomed read). The decoder either waits for more bytes or
    /// rejects; it must not invent a frame or die.
    #[test]
    fn truncated_frames_never_panic_or_decode(
        value in arb_value(),
        cut_seed in any::<u16>(),
        garbage in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut buf = Vec::new();
        encode(&value, &mut buf);
        prop_assume!(buf.len() > 1);
        let cut = 1 + (cut_seed as usize) % (buf.len() - 1);
        let mut torn = buf[..cut].to_vec();
        // The pure prefix decodes to "need more bytes", never a value.
        prop_assert_eq!(decode(&torn).expect("prefix never errors"), None);
        // With garbage appended it may error, but it must not panic,
        // and anything it does decode must consume past the tear (a
        // decode that "completed" inside the torn prefix would be
        // inventing bytes).
        torn.extend_from_slice(&garbage);
        if let Ok(Some((_, used))) = decode(&torn) {
            prop_assert!(used > cut);
        }
    }

    /// Hostile length headers (huge bulks, huge or deeply nested
    /// arrays) are rejected with an error — never a panic, an abort or
    /// unbounded allocation.
    #[test]
    fn hostile_headers_error_fast(
        len in (1u64 << 27)..(1u64 << 62),
        deep in 64usize..512,
    ) {
        let bulk = format!("${len}\r\n");
        prop_assert!(decode(bulk.as_bytes()).is_err());
        let arr = format!("*{len}\r\n");
        prop_assert!(decode(arr.as_bytes()).is_err());
        let nested = "*1\r\n".repeat(deep);
        prop_assert!(decode(nested.as_bytes()).is_err());
    }

    /// PUBLISH commands round-trip through the codec and the parser.
    #[test]
    fn publish_commands_parse(
        channel in "[a-zA-Z0-9_]{1,16}",
        payload in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let cmd = Value::array(vec![
            Value::bulk("PUBLISH"),
            Value::bulk(channel.as_bytes().to_vec()),
            Value::Bulk(Some(payload.clone())),
        ]);
        let mut buf = Vec::new();
        encode(&cmd, &mut buf);
        let (decoded, _) = decode(&buf).unwrap().unwrap();
        prop_assert_eq!(
            parse_command(&decoded).unwrap(),
            Command::Publish(channel, payload)
        );
    }
}
