//! End-to-end test of the live control plane (DESIGN.md §9): three real
//! brokers self-report load, a [`LiveLoadBalancer`] notices one of them
//! running hot under skewed traffic and migrates channels off it with
//! **no manual `install` call anywhere**, the formerly hot broker's
//! load ratio drops back under `LR_high`, delivery stays exactly-once
//! by wire-id accounting throughout the migration, and once traffic
//! stops the low-load drain releases a broker.
//!
//! Deterministic per seed: run with `CHAOS_SEED=<n>` for a different
//! schedule (CI runs two).

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    channel_id_of, BalancerConfig, ChaosProxy, ClientConfig, DispatcherSidecar, LiveLoadBalancer,
    LoadReporter, MessageId, PlanId, Ring, RoutedClient, RouterConfig, ServerId, SidecarConfig,
    TcpBroker, Tuning, DEFAULT_VNODES,
};

const PAYLOAD: usize = 2048;
const HOT_CHANNELS: usize = 4;

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xBA1A_4CE5)
}

/// Hard watchdog: a wedged client, sidecar, reporter or balancer fails
/// fast instead of hanging CI.
fn with_deadline(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {secs}s watchdog deadline")
        }
    }
}

fn sid(i: usize) -> ServerId {
    ServerId::from_index(i)
}

fn client_cfg(seed: u64) -> ClientConfig {
    ClientConfig {
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        connect_timeout: Duration::from_millis(500),
        heartbeat_interval: Duration::from_millis(100),
        liveness_timeout: Duration::from_secs(2),
        tick: Duration::from_millis(5),
        seed: Some(seed),
        ..ClientConfig::default()
    }
}

/// Drains delivered messages into the exactly-once accounting: payload
/// counts plus the set of wire ids, which must stay duplicate-free.
fn pump_deliveries(
    sub: &RoutedClient,
    counts: &mut HashMap<String, usize>,
    ids: &mut HashSet<MessageId>,
) {
    while let Some(msg) = sub.try_message() {
        let id = msg.id.expect("routed deliveries carry wire ids");
        assert!(ids.insert(id), "duplicate wire id delivered: {id:?}");
        let body = String::from_utf8(msg.payload).expect("utf8 payload");
        *counts.entry(body).or_insert(0) += 1;
    }
}

#[test]
fn skewed_traffic_trips_autonomous_rebalancing() {
    with_deadline(240, || {
        let seed = seed();
        let tuning = Tuning::default();

        let brokers: Vec<TcpBroker> = (0..3)
            .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
            .collect();
        let direct: Vec<SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
        // The routed clients go through fault proxies (seeded latency);
        // sidecars, reporters and the balancer are broker-colocated in
        // this deployment and use the direct addresses.
        let proxies: Vec<ChaosProxy> = direct
            .iter()
            .enumerate()
            .map(|(i, &addr)| ChaosProxy::spawn(addr, seed ^ (0x40 + i as u64)).expect("proxy"))
            .collect();
        let proxied: Vec<SocketAddr> = proxies.iter().map(|p| p.local_addr()).collect();
        for proxy in &proxies {
            proxy.set_latency(Duration::from_millis(1));
        }
        let sidecars: Vec<DispatcherSidecar> = (0..3)
            .map(|i| {
                DispatcherSidecar::start(
                    sid(i),
                    direct.clone(),
                    SidecarConfig {
                        ttl: Duration::from_secs(5),
                        tick: Duration::from_millis(5),
                        client: client_cfg(seed ^ (0x50 + i as u64)),
                        ..SidecarConfig::default()
                    },
                )
            })
            .collect();
        let reporters: Vec<LoadReporter> = brokers
            .iter()
            .enumerate()
            .map(|(i, b)| {
                LoadReporter::start(
                    b.load_handle(),
                    i,
                    direct[i],
                    Duration::from_millis(100),
                    client_cfg(seed ^ (0x60 + i as u64)),
                )
            })
            .collect();

        // Pick the hot broker and channels the ring homes on it, so all
        // offered load lands on one machine until the balancer acts.
        let ring = Ring::new(&(0..3).map(sid).collect::<Vec<_>>(), DEFAULT_VNODES);
        let hot = ring.server_for(channel_id_of("hot-00")).index();
        let channels: Vec<String> = (0..)
            .map(|i| format!("hot-{i:02}"))
            .filter(|name| ring.server_for(channel_id_of(name)).index() == hot)
            .take(HOT_CHANNELS)
            .collect();

        let router_cfg = |s: u64| RouterConfig {
            client: client_cfg(s),
            switch_grace: Duration::from_secs(2),
            seed: Some(s),
            ..RouterConfig::default()
        };
        let sub = RoutedClient::connect(proxied.clone(), router_cfg(seed ^ 1));
        let publisher = RoutedClient::connect(proxied, router_cfg(seed ^ 2));
        for name in &channels {
            sub.subscribe(name);
        }
        let registered = Instant::now() + Duration::from_secs(10);
        while brokers[hot].channel_subscribers(&channels[0]) == 0 {
            assert!(Instant::now() < registered, "subscriptions never landed");
            std::thread::sleep(Duration::from_millis(10));
        }

        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut ids: HashSet<MessageId> = HashSet::new();
        let mut published: Vec<String> = Vec::new();
        let mut next = 0usize;
        let mut publish_round = |publisher: &RoutedClient, published: &mut Vec<String>| {
            for name in &channels {
                let mut body = format!("{name}:{next}:");
                body.push_str(&"x".repeat(PAYLOAD.saturating_sub(body.len())));
                publisher.publish(name, body.as_bytes());
                published.push(body);
                next += 1;
            }
        };

        // Traffic first, balancer second: the metrics window must fill
        // with the skew, not with startup zeros.
        for _ in 0..10 {
            publish_round(&publisher, &mut published);
            std::thread::sleep(Duration::from_millis(10));
            pump_deliveries(&sub, &mut counts, &mut ids);
        }
        // ~40 publications × ~2 KiB per 100 ms report lands on the hot
        // broker: LR ≈ 1.6 against this capacity, with the two cold
        // brokers near zero — exactly the Algorithm 2 trigger.
        let balancer = LiveLoadBalancer::start(
            direct.clone(),
            BalancerConfig {
                capacity_floor: 50_000.0,
                tick: Duration::from_millis(200),
                window: 2,
                warmup_ticks: 2,
                install_refresh: Duration::from_secs(2),
                client: client_cfg(seed ^ 3),
                // This test exercises the *reactive* Algorithm 2 path;
                // the proactive placement pass would defuse the hot
                // broker before it ever trips LR_high.
                placement_pass: false,
                ..BalancerConfig::default()
            },
        );

        // Phase 1: keep publishing until the balancer trips a high-load
        // rebalance and installs a plan — autonomously; this test never
        // calls install() or migrate() itself.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let stats = balancer.stats();
            if stats.high_load_rebalances >= 1 && stats.plans_installed >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "balancer never rebalanced: {stats:?}"
            );
            publish_round(&publisher, &mut published);
            std::thread::sleep(Duration::from_millis(10));
            pump_deliveries(&sub, &mut counts, &mut ids);
        }

        // Phase 2: under continued traffic, a hot channel actually moves
        // (the subscriber learns a post-bootstrap plan that no longer
        // includes the hot broker) and the hot broker's measured load
        // ratio falls back under LR_high.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let moved = channels.iter().any(|name| {
                sub.local_mapping(name).is_some_and(|(mapping, plan)| {
                    plan > PlanId(0) && !mapping.servers().contains(&sid(hot))
                })
            });
            let hot_lr = balancer
                .stats()
                .load_ratios
                .iter()
                .find(|(idx, _)| *idx == hot)
                .map(|&(_, lr)| lr);
            if moved && hot_lr.is_some_and(|lr| lr < tuning.lr_high) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "migration never converged: moved={moved} hot_lr={hot_lr:?} {:?}",
                balancer.stats()
            );
            publish_round(&publisher, &mut published);
            std::thread::sleep(Duration::from_millis(10));
            pump_deliveries(&sub, &mut counts, &mut ids);
        }

        // Phase 3: stop publishing; every publication must arrive
        // exactly once (the reconfiguration ran mid-traffic).
        let want: HashSet<String> = published.iter().cloned().collect();
        let deadline = Instant::now() + Duration::from_secs(60);
        while !want.iter().all(|b| counts.contains_key(b)) {
            assert!(
                Instant::now() < deadline,
                "{} of {} publications undelivered",
                want.iter().filter(|b| !counts.contains_key(*b)).count(),
                want.len()
            );
            std::thread::sleep(Duration::from_millis(20));
            pump_deliveries(&sub, &mut counts, &mut ids);
        }
        let quiet = Instant::now() + Duration::from_millis(1500);
        while Instant::now() < quiet {
            pump_deliveries(&sub, &mut counts, &mut ids);
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(counts.len(), published.len(), "unexpected extra payloads");
        for body in &published {
            assert_eq!(
                counts.get(body).copied(),
                Some(1),
                "a publication was not delivered exactly once"
            );
        }
        assert_eq!(ids.len(), published.len());

        // Phase 4: the cluster is now idle, so the average load ratio
        // sinks under LR_low and the balancer drains a broker.
        let deadline = Instant::now() + Duration::from_secs(45);
        loop {
            let stats = balancer.stats();
            if stats.low_load_drains >= 1 && stats.active_brokers < 3 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "idle cluster never drained: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }

        balancer.shutdown();
        sub.shutdown();
        publisher.shutdown();
        for reporter in reporters {
            reporter.shutdown();
        }
        for sidecar in sidecars {
            sidecar.shutdown();
        }
        for proxy in proxies {
            proxy.shutdown();
        }
        for broker in brokers {
            broker.shutdown();
        }
    });
}
