//! Regression test for replicated-mapping wire-id correlation: a
//! publisher routing a channel as `AllPublishers` sends one copy to
//! every member broker, and a subscriber whose `AllSubscribers` view
//! has it subscribed on *all* of those members — the shape every pooled
//! virtual-client connection of the scale harness observes — receives
//! each copy. Before the fix, each per-broker client framed its copy
//! under its own decorrelated wire-id origin, so the copies carried
//! *different* ids and no dedup window (client, router or sidecar)
//! could correlate them: every publish surfaced twice. The router now
//! frames replicated fan-outs once, under a router-owned origin, and
//! sends the identical bytes to every member, so the router-level dedup
//! window suppresses the extra copies.
//!
//! Deterministic per seed: run with `CHAOS_SEED=<n>` for a different
//! schedule (CI runs two).

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    ChannelMapping, ClientConfig, MessageId, PlanId, RoutedClient, RouterConfig, ServerId,
    TcpBroker,
};

const CH: &str = "ticker";
const N: usize = 50;

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0D15_EA5E)
}

/// Hard watchdog: a wedged client or broker fails fast.
fn with_deadline(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {secs}s watchdog deadline")
        }
    }
}

fn router_cfg(seed: u64) -> RouterConfig {
    RouterConfig {
        client: ClientConfig {
            reconnect_base: Duration::from_millis(10),
            reconnect_cap: Duration::from_millis(200),
            connect_timeout: Duration::from_millis(500),
            tick: Duration::from_millis(5),
            seed: Some(seed),
            ..ClientConfig::default()
        },
        seed: Some(seed),
        ..RouterConfig::default()
    }
}

fn sid(i: usize) -> ServerId {
    ServerId::from_index(i)
}

/// Polls `pred` until it holds; panics at the deadline.
fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Drains delivered messages into the exactly-once accounting: payload
/// counts plus the set of wire ids, which must stay duplicate-free.
fn pump_deliveries(
    sub: &RoutedClient,
    counts: &mut HashMap<String, usize>,
    ids: &mut HashSet<MessageId>,
) {
    while let Some(msg) = sub.try_message() {
        let id = msg.id.expect("routed deliveries carry wire ids");
        assert!(ids.insert(id), "duplicate wire id delivered: {id:?}");
        let body = String::from_utf8(msg.payload).expect("utf8 payload");
        *counts.entry(body).or_insert(0) += 1;
    }
}

#[test]
fn replicated_channel_is_not_double_counted_through_one_pooled_connection() {
    with_deadline(60, || {
        let seed = seed();
        let brokers: Vec<TcpBroker> = (0..2)
            .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
            .collect();
        let direct: Vec<SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
        let members = vec![sid(0), sid(1)];

        // One pooled connection observing the replicated channel on
        // every member — each publish will reach it twice.
        let sub = RoutedClient::connect(direct.clone(), router_cfg(seed ^ 1));
        sub.install_local_mapping(
            CH,
            ChannelMapping::AllSubscribers(members.clone()),
            PlanId(1),
        );
        sub.subscribe(CH);
        wait_until(
            "subscriptions on both members",
            Duration::from_secs(10),
            || brokers.iter().all(|b| b.channel_subscribers(CH) >= 1),
        );

        let publisher = RoutedClient::connect(direct, router_cfg(seed ^ 2));
        publisher.install_local_mapping(CH, ChannelMapping::AllPublishers(members), PlanId(1));

        let mut published: Vec<String> = Vec::new();
        for i in 0..N {
            let body = format!("m-{i}");
            publisher.publish(CH, body.as_bytes());
            published.push(body);
        }

        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut ids: HashSet<MessageId> = HashSet::new();
        {
            let want = published.clone();
            wait_until("all deliveries", Duration::from_secs(30), || {
                pump_deliveries(&sub, &mut counts, &mut ids);
                want.iter().all(|b| counts.contains_key(b))
            });
        }
        // Quiet period: the second copy of every publish must be
        // suppressed, not delivered late.
        let quiet = Instant::now() + Duration::from_millis(1000);
        while Instant::now() < quiet {
            pump_deliveries(&sub, &mut counts, &mut ids);
            std::thread::sleep(Duration::from_millis(20));
        }

        assert_eq!(counts.len(), published.len(), "unexpected extra payloads");
        for body in &published {
            assert_eq!(
                counts.get(body).copied(),
                Some(1),
                "{body} was not delivered exactly once"
            );
        }
        assert_eq!(ids.len(), published.len());
        // The dedup window did the suppression — one duplicate per
        // publish arrived and was correlated by its shared wire id.
        let stats = sub.stats();
        assert!(
            stats.duplicates_suppressed >= N as u64,
            "replicated copies were not suppressed: {stats:?}"
        );

        sub.shutdown();
        publisher.shutdown();
        for broker in brokers {
            broker.shutdown();
        }
    });
}
