//! End-to-end tests of sequence-numbered retention and resumable
//! subscriptions: the guarantee the dedup window alone could never give.
//! Wire-id deduplication makes redelivery exactly-once only while the
//! subscriber is *connected*; an outage longer than the publisher's
//! retry horizon used to turn "exactly once" into "at most once, quietly".
//! With per-channel sequences and a bounded retention ring, a subscriber
//! that reconnects resumes from its high-water sequence — and when the
//! gap no longer fits retention, the broker says so explicitly with a
//! gap marker instead of silently skipping.
//!
//! Deterministic per seed (`CHAOS_SEED=<n>`, CI runs two); every test
//! body runs under a hard watchdog.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    channel_id_of, BrokerConfig, ChannelChange, ChannelMapping, ChaosProxy, ClientConfig,
    ClientEvent, DispatcherSidecar, PlanId, Ring, RoutedClient, RouterConfig, ServerId,
    SidecarConfig, TcpBroker, TcpPubSubClient, DEFAULT_VNODES,
};

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0D15_EA5E)
}

/// Runs `body` on its own thread with a hard deadline so a wedged
/// client or broker fails fast instead of hanging CI.
fn with_deadline(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {secs}s watchdog deadline")
        }
    }
}

/// Fast reconnects and ticks so faults resolve in test time; seeded so
/// the jitter schedule replays.
fn chaos_cfg(seed: u64) -> ClientConfig {
    ClientConfig {
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        connect_timeout: Duration::from_millis(500),
        heartbeat_interval: Duration::from_millis(100),
        liveness_timeout: Duration::from_secs(2),
        tick: Duration::from_millis(5),
        seed: Some(seed),
        ..ClientConfig::default()
    }
}

/// Drains events until one matches `pred`, returning *everything* seen
/// up to and including the match, so callers can also assert which
/// events did NOT fire. Panics at the deadline.
fn events_until(
    client: &TcpPubSubClient,
    what: &str,
    timeout: Duration,
    pred: impl Fn(&ClientEvent) -> bool,
) -> Vec<ClientEvent> {
    let deadline = Instant::now() + timeout;
    let mut seen = Vec::new();
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match client.event_timeout(left.max(Duration::from_millis(1))) {
            Some(event) => {
                let done = pred(&event);
                seen.push(event);
                if done {
                    return seen;
                }
            }
            None => {
                if Instant::now() >= deadline {
                    panic!("timed out waiting for event: {what} (saw {seen:?})");
                }
            }
        }
    }
}

/// Polls `pred` until it holds; panics at the deadline.
fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Collects messages until `n` arrived; panics at the deadline.
fn collect_messages(client: &TcpPubSubClient, n: usize, what: &str) -> Vec<Vec<u8>> {
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while got.len() < n {
        assert!(
            Instant::now() < deadline,
            "only {}/{n} messages arrived waiting for {what}",
            got.len()
        );
        if let Some(msg) = client.message_timeout(Duration::from_millis(100)) {
            got.push(msg.payload);
        }
    }
    got
}

/// The tentpole guarantee: a subscriber that is down while *more than a
/// dedup window* of traffic flows loses nothing — the broker replays
/// the retained suffix from the subscriber's high-water sequence and
/// announces the resume, with no gap.
#[test]
fn outage_longer_than_dedup_window_loses_nothing_with_retention() {
    const DURING: usize = 50;
    with_deadline(120, || {
        let seed = seed();
        let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
        let proxy = ChaosProxy::spawn(broker.local_addr(), seed).expect("proxy");

        // A dedup window far smaller than the outage traffic: whatever
        // arrives after the outage cannot be explained by redelivery
        // suppression — only by sequence-based replay.
        let cfg = ClientConfig {
            dedup_window: 16,
            ..chaos_cfg(seed ^ 1)
        };
        let sub = TcpPubSubClient::connect_with(proxy.local_addr(), cfg).expect("subscriber");
        sub.subscribe("room");
        let publisher =
            TcpPubSubClient::connect_with(broker.local_addr(), chaos_cfg(seed ^ 2)).expect("pub");
        wait_until("subscription", Duration::from_secs(10), || {
            broker.channel_subscribers("room") >= 1
        });

        for i in 0..5 {
            publisher.publish("room", format!("pre-{i}").as_bytes());
        }
        let pre = collect_messages(&sub, 5, "pre-outage messages");
        assert_eq!(
            pre,
            (0..5)
                .map(|i| format!("pre-{i}").into_bytes())
                .collect::<Vec<_>>()
        );

        // Outage: the subscriber's path dies and stays dark.
        proxy.set_black_hole(true);
        proxy.reset_all();
        wait_until(
            "broker notices the dead subscriber",
            Duration::from_secs(10),
            || broker.channel_subscribers("room") == 0,
        );

        // 50 publications — 3× the dedup window — flow while the
        // subscriber is down. All of them land in the retention ring.
        for i in 0..DURING {
            publisher.publish("room", format!("during-{i}").as_bytes());
        }
        wait_until("outage traffic retained", Duration::from_secs(10), || {
            broker.channel_retention("room").1 >= (5 + DURING) as u64
        });

        proxy.set_black_hole(false);
        let events = events_until(&sub, "resume", Duration::from_secs(30), |e| {
            matches!(e, ClientEvent::Resumed { channel, replayed }
                if channel == "room" && *replayed == DURING as u64)
        });
        assert!(
            !events.iter().any(|e| matches!(e, ClientEvent::Gap { .. })),
            "no gap expected when retention covers the outage: {events:?}"
        );

        // Every outage publication arrives exactly once, in order, with
        // monotonically increasing broker sequences.
        let mut seqs = Vec::new();
        let mut bodies = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while bodies.len() < DURING {
            assert!(
                Instant::now() < deadline,
                "only {}/{DURING} replayed",
                bodies.len()
            );
            if let Some(msg) = sub.message_timeout(Duration::from_millis(100)) {
                seqs.push(msg.seq.expect("replayed frames carry sequences"));
                bodies.push(msg.payload);
            }
        }
        let expected: Vec<Vec<u8>> = (0..DURING)
            .map(|i| format!("during-{i}").into_bytes())
            .collect();
        assert_eq!(bodies, expected);
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "sequences not monotone: {seqs:?}"
        );
        // Nothing arrives twice afterwards.
        assert_eq!(sub.message_timeout(Duration::from_millis(300)), None);

        sub.shutdown();
        publisher.shutdown();
        proxy.shutdown();
        broker.shutdown();
    });
}

/// When the outage outgrows retention the broker must say so: an
/// explicit gap marker sized exactly to the evicted prefix, then the
/// retained suffix. Silence is the one forbidden outcome — every
/// publication is either delivered or counted in `Gap::missed`.
#[test]
fn outage_beyond_retention_surfaces_an_explicit_gap() {
    const DURING: usize = 50;
    const RETAIN: usize = 8;
    with_deadline(120, || {
        let seed = seed();
        let broker = TcpBroker::bind_with(
            "127.0.0.1:0",
            BrokerConfig {
                retention_frames: RETAIN,
                ..BrokerConfig::default()
            },
        )
        .expect("bind");
        let proxy = ChaosProxy::spawn(broker.local_addr(), seed ^ 0x10).expect("proxy");

        let sub = TcpPubSubClient::connect_with(proxy.local_addr(), chaos_cfg(seed ^ 3))
            .expect("subscriber");
        sub.subscribe("room");
        let publisher =
            TcpPubSubClient::connect_with(broker.local_addr(), chaos_cfg(seed ^ 4)).expect("pub");
        wait_until("subscription", Duration::from_secs(10), || {
            broker.channel_subscribers("room") >= 1
        });

        for i in 0..5 {
            publisher.publish("room", format!("pre-{i}").as_bytes());
        }
        collect_messages(&sub, 5, "pre-outage messages");

        proxy.set_black_hole(true);
        proxy.reset_all();
        wait_until(
            "broker notices the dead subscriber",
            Duration::from_secs(10),
            || broker.channel_subscribers("room") == 0,
        );
        for i in 0..DURING {
            publisher.publish("room", format!("during-{i}").as_bytes());
        }
        wait_until("outage traffic sequenced", Duration::from_secs(10), || {
            broker.channel_retention("room").1 >= (5 + DURING) as u64
        });
        // The ring only kept the tail.
        assert_eq!(broker.channel_retention("room").0, RETAIN);

        proxy.set_black_hole(false);
        let events = events_until(
            &sub,
            "gap then resume",
            Duration::from_secs(30),
            |e| matches!(e, ClientEvent::Resumed { channel, .. } if channel == "room"),
        );
        let missed = events
            .iter()
            .find_map(|e| match e {
                ClientEvent::Gap {
                    channel, missed, ..
                } if channel == "room" => Some(*missed),
                _ => None,
            })
            .expect("an under-retained resume must surface a gap, never silence");
        let replayed = events
            .iter()
            .find_map(|e| match e {
                ClientEvent::Resumed { channel, replayed } if channel == "room" => Some(*replayed),
                _ => None,
            })
            .unwrap();
        // Full accounting: everything published during the outage is
        // either replayed or explicitly declared missing.
        assert_eq!(
            missed + replayed,
            DURING as u64,
            "missed ({missed}) + replayed ({replayed}) must cover the outage"
        );
        assert_eq!(replayed, RETAIN as u64);

        // The replayed tail is exactly the newest RETAIN publications.
        let bodies = collect_messages(&sub, RETAIN, "replayed tail");
        let expected: Vec<Vec<u8>> = (DURING - RETAIN..DURING)
            .map(|i| format!("during-{i}").into_bytes())
            .collect();
        assert_eq!(bodies, expected);

        sub.shutdown();
        publisher.shutdown();
        proxy.shutdown();
        broker.shutdown();
    });
}

/// A broker restart resets the sequence space. The replacement broker
/// cannot replay what it never saw — but the subscriber must learn
/// that, explicitly, through a restart gap, and publications queued
/// client-side during the outage must still arrive exactly once through
/// the publisher's retry machinery.
#[test]
fn broker_restart_surfaces_a_gap_and_queued_publications_survive() {
    with_deadline(120, || {
        let seed = seed();
        let broker_a = TcpBroker::bind("127.0.0.1:0").expect("bind a");
        let sub_proxy = ChaosProxy::spawn(broker_a.local_addr(), seed ^ 0x20).expect("sub proxy");
        let pub_proxy = ChaosProxy::spawn(broker_a.local_addr(), seed ^ 0x21).expect("pub proxy");

        let sub = TcpPubSubClient::connect_with(sub_proxy.local_addr(), chaos_cfg(seed ^ 5))
            .expect("subscriber");
        sub.subscribe("queue");
        let publisher = TcpPubSubClient::connect_with(
            pub_proxy.local_addr(),
            ClientConfig {
                publish_retries: 10_000,
                ..chaos_cfg(seed ^ 6)
            },
        )
        .expect("publisher");
        wait_until("subscription", Duration::from_secs(10), || {
            broker_a.channel_subscribers("queue") >= 1
        });
        for i in 0..3 {
            publisher.publish("queue", format!("pre-{i}").as_bytes());
        }
        collect_messages(&sub, 3, "pre-restart messages");

        // The broker dies and a replacement comes up elsewhere. The
        // publisher's path stays dark for now, so its outage traffic
        // queues client-side.
        let broker_b = TcpBroker::bind("127.0.0.1:0").expect("bind b");
        sub_proxy.set_upstream(broker_b.local_addr());
        pub_proxy.set_upstream(broker_b.local_addr());
        pub_proxy.set_black_hole(true);
        sub_proxy.reset_all();
        pub_proxy.reset_all();
        broker_a.shutdown();
        for i in 0..10 {
            publisher.publish("queue", format!("during-{i}").as_bytes());
        }

        // The subscriber resumes on the replacement asking for its old
        // high-water — which is *ahead* of the fresh broker's counter.
        // That discontinuity must surface as a gap (the client resets
        // its resume state), never as a silent live subscription.
        let events = events_until(
            &sub,
            "restart gap",
            Duration::from_secs(30),
            |e| matches!(e, ClientEvent::Gap { channel, .. } if channel == "queue"),
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ClientEvent::Gap { channel, .. } if channel == "queue")),
            "no gap surfaced across the restart: {events:?}"
        );
        wait_until(
            "resubscription on the replacement",
            Duration::from_secs(20),
            || broker_b.channel_subscribers("queue") >= 1,
        );

        // Only now may the publisher reach the new broker: its queued
        // outage traffic flushes into the live subscription.
        pub_proxy.set_black_hole(false);
        let mut counts: HashMap<Vec<u8>, usize> = HashMap::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while counts.len() < 10 {
            assert!(
                Instant::now() < deadline,
                "only {}/10 queued publications arrived",
                counts.len()
            );
            if let Some(msg) = sub.message_timeout(Duration::from_millis(100)) {
                *counts.entry(msg.payload).or_insert(0) += 1;
            }
        }
        for i in 0..10 {
            assert_eq!(
                counts.get(format!("during-{i}").as_bytes()).copied(),
                Some(1),
                "during-{i} not delivered exactly once"
            );
        }
        assert_eq!(sub.message_timeout(Duration::from_millis(300)), None);

        sub.shutdown();
        publisher.shutdown();
        sub_proxy.shutdown();
        pub_proxy.shutdown();
        broker_b.shutdown();
    });
}

/// The hardest case: the channel *migrates* while the subscriber is
/// down. The old home's retention ring holds both the missed
/// publications and the sidecar's `<switch>` emissions, so the
/// resuming subscriber replays its way into learning the new home,
/// re-subscribes there from sequence 0, and loses nothing end to end.
#[test]
fn mid_outage_switch_migration_still_resumes_on_the_new_home() {
    with_deadline(180, || {
        let seed = seed();
        let brokers: Vec<TcpBroker> = (0..2)
            .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind"))
            .collect();
        let direct: Vec<SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();

        // Sidecars talk to their brokers on clean paths.
        let side_cfg = SidecarConfig {
            ttl: Duration::from_secs(60),
            tick: Duration::from_millis(5),
            client: chaos_cfg(seed ^ 7),
            ..SidecarConfig::default()
        };
        let sidecars: Vec<DispatcherSidecar> = (0..2)
            .map(|i| {
                DispatcherSidecar::start(ServerId::from_index(i), direct.clone(), side_cfg.clone())
            })
            .collect();

        // Pick a channel whose ring home is broker 0, so the routed
        // subscriber starts there without any plan traffic.
        let ring_ids: Vec<ServerId> = (0..2).map(ServerId::from_index).collect();
        let ring = Ring::new(&ring_ids, DEFAULT_VNODES);
        let channel = (0..)
            .map(|i| format!("migrant-{i}"))
            .find(|c| ring.server_for(channel_id_of(c)).index() == 0)
            .unwrap();

        // The subscriber reaches broker 0 only through a chaos proxy;
        // broker 1 is reached directly.
        let proxy = ChaosProxy::spawn(direct[0], seed ^ 0x30).expect("proxy");
        let directory = vec![proxy.local_addr(), direct[1]];
        let sub = RoutedClient::connect(
            directory,
            RouterConfig {
                client: chaos_cfg(seed ^ 8),
                switch_grace: Duration::from_millis(200),
                seed: Some(seed ^ 9),
                ..RouterConfig::default()
            },
        );
        sub.subscribe(&channel);
        // One subscription from the routed client, one from broker 0's
        // own sidecar once the migration installs (none yet).
        wait_until(
            "routed subscription on old home",
            Duration::from_secs(10),
            || brokers[0].channel_subscribers(&channel) >= 1,
        );

        // A stale publisher keeps talking to the old home throughout.
        let publisher =
            TcpPubSubClient::connect_with(direct[0], chaos_cfg(seed ^ 10)).expect("publisher");
        for i in 0..3 {
            publisher.publish(&channel, format!("pre-{i}").as_bytes());
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut got = 0;
        while got < 3 {
            assert!(
                Instant::now() < deadline,
                "pre-migration messages never arrived"
            );
            if sub.message_timeout(Duration::from_millis(100)).is_some() {
                got += 1;
            }
        }

        // Outage: the subscriber loses the old home entirely.
        proxy.set_black_hole(true);
        proxy.reset_all();
        wait_until(
            "old home sees the subscriber gone",
            Duration::from_secs(10),
            || brokers[0].channel_subscribers(&channel) == 0,
        );

        // Mid-outage, the balancer migrates the channel 0 → 1. Both
        // sidecars subscribe their watches and start the forwarding
        // window.
        let change = ChannelChange {
            channel: channel.clone(),
            old: ChannelMapping::Single(ServerId::from_index(0)),
            new: ChannelMapping::Single(ServerId::from_index(1)),
        };
        for sidecar in &sidecars {
            sidecar.install(change.clone(), PlanId(1));
        }
        wait_until(
            "sidecar watches on the channel",
            Duration::from_secs(10),
            || {
                brokers[0].channel_subscribers(&channel) >= 1
                    && brokers[1].channel_subscribers(&channel) >= 1
            },
        );

        // Outage traffic from the stale publisher: the old home's
        // sidecar forwards each to the new home and emits `<switch>`
        // frames on the channel — all of it lands in broker 0's
        // retention ring, waiting for the subscriber.
        for i in 0..10 {
            publisher.publish(&channel, format!("during-{i}").as_bytes());
        }
        wait_until("forwarding window active", Duration::from_secs(20), || {
            sidecars[0].stats().forwarded >= 10 && sidecars[0].stats().switches_emitted >= 10
        });

        // Heal: the subscriber resumes on the old home, replays the
        // missed publications *and* the switch frames, re-points to the
        // new home, and keeps receiving there.
        proxy.set_black_hole(false);
        let mut counts: HashMap<Vec<u8>, usize> = HashMap::new();
        let deadline = Instant::now() + Duration::from_secs(60);
        while (0..10).any(|i| !counts.contains_key(format!("during-{i}").as_bytes())) {
            assert!(
                Instant::now() < deadline,
                "outage traffic incomplete after resume: {:?}",
                counts
                    .keys()
                    .map(|k| String::from_utf8_lossy(k).into_owned())
                    .collect::<Vec<_>>()
            );
            if let Some(msg) = sub.message_timeout(Duration::from_millis(100)) {
                *counts.entry(msg.payload).or_insert(0) += 1;
            }
        }
        wait_until(
            "switch applied from replay",
            Duration::from_secs(20),
            || sub.stats().switches_applied >= 1,
        );
        assert_eq!(
            sub.local_mapping(&channel),
            Some((ChannelMapping::Single(ServerId::from_index(1)), PlanId(1)))
        );

        // Post-migration traffic published straight to the new home.
        wait_until(
            "subscription on the new home",
            Duration::from_secs(20),
            || {
                brokers[1].channel_subscribers(&channel) >= 2 // sidecar watch + subscriber
            },
        );
        let mover =
            TcpPubSubClient::connect_with(direct[1], chaos_cfg(seed ^ 11)).expect("new-home pub");
        for i in 0..5 {
            mover.publish(&channel, format!("post-{i}").as_bytes());
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while (0..5).any(|i| !counts.contains_key(format!("post-{i}").as_bytes())) {
            assert!(
                Instant::now() < deadline,
                "post-migration traffic incomplete"
            );
            if let Some(msg) = sub.message_timeout(Duration::from_millis(100)) {
                *counts.entry(msg.payload).or_insert(0) += 1;
            }
        }

        // Zero loss, exactly once, across outage AND migration: every
        // during-* and post-* publication was delivered exactly once
        // (forwarded copies and replays were all deduplicated).
        std::thread::sleep(Duration::from_millis(300));
        while let Some(msg) = sub.try_message() {
            *counts.entry(msg.payload).or_insert(0) += 1;
        }
        for i in 0..10 {
            assert_eq!(
                counts.get(format!("during-{i}").as_bytes()).copied(),
                Some(1),
                "during-{i} not delivered exactly once"
            );
        }
        for i in 0..5 {
            assert_eq!(
                counts.get(format!("post-{i}").as_bytes()).copied(),
                Some(1),
                "post-{i} not delivered exactly once"
            );
        }

        mover.shutdown();
        publisher.shutdown();
        sub.shutdown();
        for sidecar in sidecars {
            sidecar.shutdown();
        }
        proxy.shutdown();
        for broker in brokers {
            broker.shutdown();
        }
    });
}
