//! Live-cluster reconfiguration test for the routed TCP tier: a hot
//! channel migrates across a 3-broker cluster mid-traffic — first
//! `Single → Single`, then `Single → AllSubscribers` — while every
//! client↔broker path runs through a [`ChaosProxy`] injecting latency
//! and stalls. The acceptance bar is the paper's: zero lost and zero
//! duplicated deliveries (wire-id accounting), wrong-server
//! publications forwarded until publishers and subscribers converge on
//! the new plan, and all sidecar forwarding state torn down once its
//! TTL lapses.
//!
//! Deterministic per seed: run with `CHAOS_SEED=<n>` for a different
//! schedule (CI runs two).

use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    channel_id_of, ChannelChange, ChannelMapping, ChaosProxy, ClientConfig, Direction,
    DispatcherSidecar, MessageId, PlanId, Ring, RoutedClient, RouterConfig, ServerId,
    SidecarConfig, TcpBroker, DEFAULT_VNODES,
};

const CH: &str = "hotspot";

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0D15_EA5E)
}

/// Hard watchdog: a wedged client, sidecar or broker fails fast.
fn with_deadline(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {secs}s watchdog deadline")
        }
    }
}

fn chaos_client_cfg(seed: u64) -> ClientConfig {
    ClientConfig {
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        connect_timeout: Duration::from_millis(500),
        heartbeat_interval: Duration::from_millis(100),
        liveness_timeout: Duration::from_secs(2),
        tick: Duration::from_millis(5),
        seed: Some(seed),
        ..ClientConfig::default()
    }
}

fn router_cfg(seed: u64) -> RouterConfig {
    RouterConfig {
        client: chaos_client_cfg(seed),
        switch_grace: Duration::from_secs(2),
        seed: Some(seed),
        ..RouterConfig::default()
    }
}

fn sidecar_cfg(seed: u64) -> SidecarConfig {
    SidecarConfig {
        ttl: Duration::from_secs(4),
        tick: Duration::from_millis(5),
        client: chaos_client_cfg(seed),
        ..SidecarConfig::default()
    }
}

fn sid(i: usize) -> ServerId {
    ServerId::from_index(i)
}

/// Polls `pred` until it holds; panics at the deadline.
fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Drains delivered messages into the exactly-once accounting: payload
/// counts plus the set of wire ids, which must stay duplicate-free.
fn pump_deliveries(
    sub: &RoutedClient,
    counts: &mut HashMap<String, usize>,
    ids: &mut HashSet<MessageId>,
) {
    while let Some(msg) = sub.try_message() {
        let id = msg.id.expect("routed deliveries carry wire ids");
        assert!(ids.insert(id), "duplicate wire id delivered: {id:?}");
        let body = String::from_utf8(msg.payload).expect("utf8 payload");
        *counts.entry(body).or_insert(0) += 1;
    }
}

#[test]
fn hot_channel_migrates_across_live_cluster_exactly_once() {
    with_deadline(180, || {
        let seed = seed();
        let brokers: Vec<TcpBroker> = (0..3)
            .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
            .collect();
        let direct: Vec<SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
        // Every router↔broker path runs through a fault proxy; sidecars
        // are broker-colocated and use the direct addresses.
        let proxies: Vec<ChaosProxy> = direct
            .iter()
            .enumerate()
            .map(|(i, &addr)| ChaosProxy::spawn(addr, seed ^ (0x10 + i as u64)).expect("proxy"))
            .collect();
        let proxied: Vec<SocketAddr> = proxies.iter().map(|p| p.local_addr()).collect();
        for proxy in &proxies {
            proxy.set_latency(Duration::from_millis(2));
        }
        let sidecars: Vec<DispatcherSidecar> = (0..3)
            .map(|i| {
                DispatcherSidecar::start(
                    sid(i),
                    direct.clone(),
                    sidecar_cfg(seed ^ (0x20 + i as u64)),
                )
            })
            .collect();

        let sub = RoutedClient::connect(proxied.clone(), router_cfg(seed ^ 1));
        let publisher = RoutedClient::connect(proxied, router_cfg(seed ^ 2));

        // Where the ring homes the channel before any plan exists; the
        // two migrations then walk it across the other two brokers.
        let ring: Vec<ServerId> = (0..3).map(sid).collect();
        let origin = Ring::new(&ring, DEFAULT_VNODES)
            .server_for(channel_id_of(CH))
            .index();
        let first = (origin + 1) % 3;
        let second = (origin + 2) % 3;

        sub.subscribe(CH);
        wait_until("initial subscription", Duration::from_secs(10), || {
            brokers[origin].channel_subscribers(CH) >= 1
        });

        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut ids: HashSet<MessageId> = HashSet::new();
        let mut published: Vec<String> = Vec::new();
        let mut next = 0usize;
        let mut publish_one = |publisher: &RoutedClient, published: &mut Vec<String>| {
            let body = format!("p-{next}");
            publisher.publish(CH, body.as_bytes());
            published.push(body);
            next += 1;
        };

        // Phase 0: steady traffic on the ring-resolved home.
        for _ in 0..10 {
            publish_one(&publisher, &mut published);
        }
        {
            let want = published.clone();
            wait_until("pre-migration deliveries", Duration::from_secs(30), || {
                pump_deliveries(&sub, &mut counts, &mut ids);
                want.iter().all(|b| counts.contains_key(b))
            });
        }

        // Phase 1: migrate Single(origin) → Single(first) under plan 1,
        // mid-traffic, with stalls on both ends of the move. The
        // new-home sidecar is installed (and its watch confirmed) first
        // so no forwarded publication can fall in a gap.
        let plan1 = PlanId(1);
        let change1 = ChannelChange {
            channel: CH.to_owned(),
            old: ChannelMapping::Single(sid(origin)),
            new: ChannelMapping::Single(sid(first)),
        };
        sidecars[first].install(change1.clone(), plan1);
        wait_until("new-home watch (plan 1)", Duration::from_secs(10), || {
            brokers[first].channel_subscribers(CH) >= 1
        });
        sidecars[origin].install(change1.clone(), plan1);
        wait_until("old-home watch (plan 1)", Duration::from_secs(10), || {
            brokers[origin].channel_subscribers(CH) >= 2
        });
        proxies[origin].stall(Direction::ServerToClient, Duration::from_millis(300));
        proxies[first].stall(Direction::ClientToServer, Duration::from_millis(200));

        let target1 = (ChannelMapping::Single(sid(first)), plan1);
        let converge_deadline = Instant::now() + Duration::from_secs(45);
        loop {
            assert!(
                Instant::now() < converge_deadline,
                "plan 1 never converged: publisher={:?} subscriber={:?}",
                publisher.local_mapping(CH),
                sub.local_mapping(CH)
            );
            publish_one(&publisher, &mut published);
            // Keep the reconfiguration window open while unconverged.
            sidecars[first].install(change1.clone(), plan1);
            sidecars[origin].install(change1.clone(), plan1);
            std::thread::sleep(Duration::from_millis(25));
            pump_deliveries(&sub, &mut counts, &mut ids);
            if publisher.local_mapping(CH).as_ref() == Some(&target1)
                && sub.local_mapping(CH).as_ref() == Some(&target1)
            {
                break;
            }
        }

        // Phase 2: migrate Single(first) → AllSubscribers([origin,
        // second]) under plan 2 — the channel goes replicated while
        // traffic keeps flowing through a stalled old home.
        let members = vec![sid(origin), sid(second)];
        let plan2 = PlanId(2);
        let change2 = ChannelChange {
            channel: CH.to_owned(),
            old: ChannelMapping::Single(sid(first)),
            new: ChannelMapping::AllSubscribers(members.clone()),
        };
        sidecars[origin].install(change2.clone(), plan2);
        sidecars[second].install(change2.clone(), plan2);
        wait_until("new-home watches (plan 2)", Duration::from_secs(10), || {
            brokers[origin].channel_subscribers(CH) >= 1
                && brokers[second].channel_subscribers(CH) >= 1
        });
        sidecars[first].install(change2.clone(), plan2);
        wait_until("old-home watch (plan 2)", Duration::from_secs(10), || {
            brokers[first].channel_subscribers(CH) >= 2
        });
        proxies[first].stall(Direction::ServerToClient, Duration::from_millis(300));

        let target2 = (ChannelMapping::AllSubscribers(members), plan2);
        let converge_deadline = Instant::now() + Duration::from_secs(45);
        loop {
            assert!(
                Instant::now() < converge_deadline,
                "plan 2 never converged: publisher={:?} subscriber={:?}",
                publisher.local_mapping(CH),
                sub.local_mapping(CH)
            );
            publish_one(&publisher, &mut published);
            sidecars[origin].install(change2.clone(), plan2);
            sidecars[second].install(change2.clone(), plan2);
            sidecars[first].install(change2.clone(), plan2);
            std::thread::sleep(Duration::from_millis(25));
            pump_deliveries(&sub, &mut counts, &mut ids);
            if publisher.local_mapping(CH).as_ref() == Some(&target2)
                && sub.local_mapping(CH).as_ref() == Some(&target2)
            {
                break;
            }
        }

        // Phase 3: steady traffic on the replicated mapping.
        for _ in 0..10 {
            publish_one(&publisher, &mut published);
        }
        {
            let want = published.clone();
            wait_until("all deliveries", Duration::from_secs(60), || {
                pump_deliveries(&sub, &mut counts, &mut ids);
                want.iter().all(|b| counts.contains_key(b))
            });
        }
        // Quiet period: any straggling forwarded duplicate must be
        // suppressed, not delivered.
        let quiet = Instant::now() + Duration::from_millis(1500);
        while Instant::now() < quiet {
            pump_deliveries(&sub, &mut counts, &mut ids);
            std::thread::sleep(Duration::from_millis(20));
        }

        // Exactly-once: every publication delivered once, none twice,
        // none lost, and never a repeated wire id (pump_deliveries
        // asserts id uniqueness on every insert).
        assert_eq!(counts.len(), published.len(), "unexpected extra payloads");
        for body in &published {
            assert_eq!(
                counts.get(body).copied(),
                Some(1),
                "{body} was not delivered exactly once"
            );
        }
        assert_eq!(ids.len(), published.len());

        // The reconfiguration machinery actually ran: the old homes
        // forwarded wrong-server publications and emitted both control
        // frame kinds; the routers applied them.
        let old_home = sidecars[origin].stats();
        assert!(old_home.forwarded >= 1, "old home never forwarded");
        assert!(old_home.switches_emitted >= 1, "no <switch> emitted");
        assert!(old_home.moved_emitted >= 1, "no MOVED emitted");
        let second_old_home = sidecars[first].stats();
        assert!(
            second_old_home.forwarded >= 1,
            "plan-2 old home never forwarded"
        );
        assert!(
            publisher.stats().moved_applied >= 2,
            "publisher converged without MOVED frames: {:?}",
            publisher.stats()
        );
        assert!(
            sub.stats().switches_applied >= 2,
            "subscriber converged without <switch> frames: {:?}",
            sub.stats()
        );

        // TTL teardown: with convergence reached nothing refreshes the
        // sidecar state, so every watch unsubscribes and the forwarding
        // tables empty out.
        wait_until("sidecar TTL teardown", Duration::from_secs(20), || {
            sidecars.iter().all(|s| s.stats().active_channels == 0)
        });
        assert!(sidecars[origin].stats().expired >= 1);
        // Final subscriber placement is exactly the plan-2 mapping: one
        // subscription on each AllSubscribers member, nothing on the
        // drained broker (grace-period unsubscribes included).
        wait_until("final subscriptions", Duration::from_secs(20), || {
            brokers[origin].channel_subscribers(CH) == 1
                && brokers[second].channel_subscribers(CH) == 1
                && brokers[first].channel_subscribers(CH) == 0
        });

        sub.shutdown();
        publisher.shutdown();
        for sidecar in sidecars {
            sidecar.shutdown();
        }
        for proxy in proxies {
            proxy.shutdown();
        }
        for broker in brokers {
            broker.shutdown();
        }
    });
}
