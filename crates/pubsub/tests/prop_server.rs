//! Property tests for the pub/sub server: its subscription bookkeeping
//! stays internally consistent and delivery matches the live
//! subscription table under arbitrary operation sequences.

use dynamoth_pubsub::{Channel, CpuModel, PubSubServer};
use dynamoth_sim::{NodeId, SimTime};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum Op {
    Subscribe(usize, u64),
    Unsubscribe(usize, u64),
    Publish(u64),
    Disconnect(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8, 0u64..6).prop_map(|(c, ch)| Op::Subscribe(c, ch)),
        (0usize..8, 0u64..6).prop_map(|(c, ch)| Op::Unsubscribe(c, ch)),
        (0u64..6).prop_map(Op::Publish),
        (0usize..8).prop_map(Op::Disconnect),
    ]
}

proptest! {
    /// The server's bookkeeping mirrors a straightforward reference
    /// model under arbitrary op sequences, and publish fan-out always
    /// equals the reference subscriber set.
    #[test]
    fn server_matches_reference_model(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut server = PubSubServer::new(CpuModel::default());
        let mut model: BTreeMap<Channel, BTreeSet<NodeId>> = BTreeMap::new();
        let now = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Subscribe(c, ch) => {
                    let client = NodeId::from_index(c);
                    let channel = Channel(ch);
                    let was_new = model.entry(channel).or_default().insert(client);
                    prop_assert_eq!(server.subscribe(now, client, channel), was_new);
                }
                Op::Unsubscribe(c, ch) => {
                    let client = NodeId::from_index(c);
                    let channel = Channel(ch);
                    let had = model.get_mut(&channel).is_some_and(|s| s.remove(&client));
                    if model.get(&channel).is_some_and(BTreeSet::is_empty) {
                        model.remove(&channel);
                    }
                    prop_assert_eq!(server.unsubscribe(now, client, channel), had);
                }
                Op::Publish(ch) => {
                    let channel = Channel(ch);
                    let out = server.publish(now, channel);
                    let expected: Vec<NodeId> = model
                        .get(&channel)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    prop_assert_eq!(out.recipients, expected);
                }
                Op::Disconnect(c) => {
                    let client = NodeId::from_index(c);
                    let mut expected: Vec<Channel> = Vec::new();
                    model.retain(|&ch, subs| {
                        if subs.remove(&client) {
                            expected.push(ch);
                        }
                        !subs.is_empty()
                    });
                    let mut got = server.disconnect(client);
                    got.sort();
                    prop_assert_eq!(got, expected);
                }
            }
            // Global invariants after every step.
            let model_total: usize = model.values().map(BTreeSet::len).sum();
            prop_assert_eq!(server.subscription_count(), model_total);
            let model_clients: BTreeSet<NodeId> =
                model.values().flatten().copied().collect();
            prop_assert_eq!(server.client_count(), model_clients.len());
            for (&ch, subs) in &model {
                prop_assert_eq!(server.subscriber_count(ch), subs.len());
                for &client in subs {
                    prop_assert!(server.is_subscribed(client, ch));
                }
            }
        }
    }

    /// CPU accounting is monotonic: `busy_until` never moves backwards,
    /// and each command pushes it forward by at least the base cost.
    #[test]
    fn cpu_time_is_monotonic(times in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut server = PubSubServer::new(CpuModel::default());
        let mut sorted = times.clone();
        sorted.sort();
        let mut last = SimTime::ZERO;
        for t in sorted {
            let out = server.publish(SimTime::from_millis(t), Channel(1));
            prop_assert!(out.cpu_done >= last);
            prop_assert!(out.cpu_done > SimTime::from_millis(t));
            last = out.cpu_done;
        }
    }
}
