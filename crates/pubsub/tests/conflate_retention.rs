//! Conflation × retention interplay: a broker running
//! [`OverflowPolicy::ConflateByChannel`] against a stalled subscriber
//! must (1) deliver strictly increasing sequence numbers on the
//! conflated channel — conflation advances the PR-6 sequence stream, it
//! never reorders it; (2) count every shed frame in
//! `per_connection_drops` so delivered + dropped equals published; (3)
//! spare frames of *other* channels while same-channel victims exist;
//! and (4) leave the retention ring untouched, so a later `DMSEQ1`
//! resume replays exactly the retained suffix with no spurious
//! `DMGAP1`.
//!
//! Deterministic per seed: run with `CHAOS_SEED=<n>` for a different
//! schedule (CI runs two).

use std::sync::mpsc;
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    BrokerConfig, ChaosProxy, ClientConfig, ClientEvent, Direction, OverflowPolicy, TcpBroker,
    TcpPubSubClient,
};

const FEED: &str = "prices.feed";
const OTHER: &str = "slow.other";
/// Warm-up messages delivered before the stall.
const WARMUP: u64 = 5;
/// Flood messages published into the stall.
const FLOOD: u64 = 2000;
const PAYLOAD: usize = 8 * 1024;

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0D15_EA5E)
}

/// Hard watchdog: a wedged client, proxy or broker fails fast.
fn with_deadline(secs: u64, body: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {secs}s watchdog deadline")
        }
    }
}

fn client_cfg(seed: u64) -> ClientConfig {
    ClientConfig {
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        connect_timeout: Duration::from_millis(500),
        heartbeat_interval: Duration::from_millis(500),
        liveness_timeout: Duration::from_secs(15),
        tick: Duration::from_millis(5),
        seed: Some(seed),
        ..ClientConfig::default()
    }
}

/// Polls `pred` until it holds; panics at the deadline.
fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn conflation_advances_sequences_and_resume_replays_survivors() {
    with_deadline(180, || {
        let seed = seed();
        let config = BrokerConfig {
            // Small enough that the flood overflows it by orders of
            // magnitude; holds ~4 payload frames.
            outbox_limit_bytes: 32 * 1024,
            overflow_policy: OverflowPolicy::ConflateByChannel,
            // Large enough to retain the entire run: conflation must
            // shed from outboxes only, never from retention.
            retention_frames: 4096,
            retention_bytes: 64 * 1024 * 1024,
            ..BrokerConfig::default()
        };
        let broker = TcpBroker::bind_with("127.0.0.1:0", config).expect("bind broker");
        let proxy = ChaosProxy::spawn(broker.local_addr(), seed).expect("proxy");

        let sub = TcpPubSubClient::connect_addr(proxy.local_addr(), client_cfg(seed ^ 1));
        sub.subscribe_from(FEED, 0);
        sub.subscribe(OTHER);
        wait_until("subscriptions", Duration::from_secs(10), || {
            broker.channel_subscribers(FEED) == 1 && broker.channel_subscribers(OTHER) == 1
        });

        let publisher = TcpPubSubClient::connect_addr(broker.local_addr(), client_cfg(seed ^ 2));
        let payload = vec![b'x'; PAYLOAD];

        // Warm-up: the subscriber sees the first sequences live. Small
        // frames — a burst of flood-sized ones could overflow the tiny
        // outbox before the reactor flushes and conflate the warm-up
        // itself away.
        for _ in 0..WARMUP {
            publisher.publish(FEED, b"warmup");
        }
        let mut feed_seqs: Vec<u64> = Vec::new();
        let mut other_count = 0u64;
        let drain = |feed_seqs: &mut Vec<u64>, other_count: &mut u64| {
            while let Some(msg) = sub.try_message() {
                match msg.channel.as_str() {
                    FEED => feed_seqs.push(msg.seq.expect("sequenced subscription")),
                    OTHER => *other_count += 1,
                    ch => panic!("unexpected channel {ch}"),
                }
            }
        };
        wait_until("warm-up deliveries", Duration::from_secs(20), || {
            drain(&mut feed_seqs, &mut other_count);
            feed_seqs.len() as u64 >= WARMUP
        });

        // Stall the broker→subscriber path and flood the feed channel.
        // The outbox overflows and conflation sheds stale feed frames;
        // the lone OTHER frame must survive every eviction round.
        let stall = Duration::from_secs(3);
        let stall_over = Instant::now() + stall;
        proxy.stall(Direction::ServerToClient, stall);
        publisher.publish(OTHER, b"sentinel");
        for _ in 0..FLOOD {
            publisher.publish(FEED, &payload);
        }

        // Wait out the stall, then drain until the stream goes quiet
        // for a full second — only then is delivered-vs-dropped
        // accounting settled.
        while Instant::now() < stall_over {
            drain(&mut feed_seqs, &mut other_count);
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut last_progress = Instant::now();
        let mut seen = feed_seqs.len();
        loop {
            drain(&mut feed_seqs, &mut other_count);
            if feed_seqs.len() != seen {
                seen = feed_seqs.len();
                last_progress = Instant::now();
            }
            if last_progress.elapsed() > Duration::from_secs(1) {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }

        let published = WARMUP + FLOOD;
        // (1) Strictly increasing sequences, starting at the beginning
        // of the stream: skips are allowed (the conflated frames),
        // regressions and repeats are not.
        assert!(!feed_seqs.is_empty());
        assert_eq!(feed_seqs[0], 0, "warm-up must start the stream");
        for w in feed_seqs.windows(2) {
            assert!(w[0] < w[1], "sequence regression: {} then {}", w[0], w[1]);
        }
        let delivered = feed_seqs.len() as u64;
        assert!(
            delivered < published,
            "the stall never overflowed the outbox; nothing was conflated"
        );
        // (2) Conservation: every published feed frame was delivered or
        // counted as dropped on the stalled connection. (OTHER and the
        // control markers flowed before/around the stall; nothing else
        // was shed.)
        let drops: u64 = broker.per_connection_drops().iter().map(|(_, d)| *d).sum();
        assert_eq!(
            delivered + drops,
            published,
            "per_connection_drops does not account for the conflated frames"
        );
        // (3) The foreign channel survived conflation.
        assert_eq!(other_count, 1, "conflation shed a foreign channel's frame");
        // No Gap was surfaced: conflation skips are silent seq advances.
        let mut resumed = 0;
        while let Some(ev) = sub.try_event() {
            match ev {
                ClientEvent::Gap { .. } => panic!("spurious gap event: {ev:?}"),
                ClientEvent::Resumed { .. } => resumed += 1,
                _ => {}
            }
        }
        assert_eq!(resumed, 1, "the initial subscribe_from resume marker");
        // (4) Retention is untouched by outbox conflation: every
        // published frame is still retained.
        let (retained, next_seq) = broker.channel_retention(FEED);
        assert_eq!(retained as u64, published);
        assert_eq!(next_seq, published);

        // A late joiner resumes from a retained sequence: the replay is
        // exactly the retained suffix — contiguous, complete, and
        // without a DMGAP1 (the requested frame survived in retention
        // even though the stalled outbox conflated it away).
        let resume_from = published - 3;
        let resumer = TcpPubSubClient::connect_addr(broker.local_addr(), client_cfg(seed ^ 3));
        resumer.subscribe_from(FEED, resume_from);
        let mut replayed: Vec<u64> = Vec::new();
        let mut resume_done = false;
        wait_until("resume replay", Duration::from_secs(20), || {
            while let Some(msg) = resumer.try_message() {
                replayed.push(msg.seq.expect("sequenced replay"));
            }
            while let Some(ev) = resumer.try_event() {
                match ev {
                    ClientEvent::Gap { .. } => panic!("spurious gap on resume: {ev:?}"),
                    ClientEvent::Resumed { replayed: n, .. } => {
                        assert_eq!(n, 3, "replay must cover exactly the requested suffix");
                        resume_done = true;
                    }
                    _ => {}
                }
            }
            resume_done
        });
        assert_eq!(
            replayed,
            vec![resume_from, resume_from + 1, resume_from + 2]
        );

        sub.shutdown();
        publisher.shutdown();
        resumer.shutdown();
        proxy.shutdown();
        broker.shutdown();
    });
}
