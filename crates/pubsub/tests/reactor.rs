//! Regression suite for the reactor-core broker engine: exact overflow
//! accounting under both [`OverflowPolicy`] variants, bounded shutdown
//! drains, half-open detection via the liveness timer wheel, and
//! per-loop statistics consistency.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dynamoth_pubsub::resp::{self, Value};
use dynamoth_pubsub::{BrokerConfig, OverflowPolicy, TcpBroker};

struct RespClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RespClient {
    fn connect(addr: std::net::SocketAddr) -> RespClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        RespClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, words: &[&str]) {
        let value = Value::array(words.iter().map(|w| Value::bulk(*w)).collect());
        let mut out = Vec::new();
        resp::encode(&value, &mut out);
        self.stream.write_all(&out).expect("write");
    }

    fn recv(&mut self) -> Value {
        self.try_recv(Duration::from_secs(10))
            .expect("timed out waiting for a frame")
    }

    fn try_recv(&mut self, timeout: Duration) -> Option<Value> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some((value, used)) = resp::decode(&self.buf).expect("valid resp") {
                self.buf.drain(..used);
                return Some(value);
            }
            if Instant::now() >= deadline {
                return None;
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return None,
            }
        }
    }
}

/// Under `DropOldest`, every frame the broker ever creates for a
/// connection is accounted for exactly once — flushed to the kernel,
/// shed at push time, or discarded by the shutdown drain — and the
/// drops are attributed to the one connection that could not keep up.
#[test]
fn drop_oldest_accounting_is_exact_per_connection() {
    // Loopback socket buffers can absorb multiple megabytes before the
    // outbox starts queueing, so push well past that.
    const PUBLISHES: u64 = 1_000;
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            outbox_limit_bytes: 32 * 1024,
            overflow_policy: OverflowPolicy::DropOldest,
            shutdown_drain_timeout: Duration::from_millis(200),
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();

    let mut slow = RespClient::connect(addr);
    slow.send(&["SUBSCRIBE", "hose"]);
    assert_eq!(slow.recv(), resp::subscription_push("subscribe", "hose", 1));
    // From here on, `slow` never reads: its socket buffer fills, then
    // its 32 KiB outbox sheds oldest frames on every further push.

    let payload = "y".repeat(16 * 1024);
    let mut publisher = RespClient::connect(addr);
    for _ in 0..PUBLISHES {
        publisher.send(&["PUBLISH", "hose", &payload]);
        assert_eq!(
            publisher.recv(),
            Value::Integer(1),
            "DropOldest must keep the subscriber alive"
        );
    }

    // Let the loops quiesce so the pre-shutdown snapshot is stable: the
    // slow connection's flushes are all Pending against a full socket
    // buffer, so two identical consecutive samples mean nothing is
    // still in flight.
    let deadline = Instant::now() + Duration::from_secs(10);
    let before = loop {
        let a = broker.health();
        std::thread::sleep(Duration::from_millis(50));
        let b = broker.health();
        if a.flush == b.flush && a.dropped_frames == b.dropped_frames {
            break b;
        }
        assert!(Instant::now() < deadline, "counters never quiesced");
    };

    // All drops so far belong to the slow connection, exactly.
    assert!(before.dropped_frames > 0, "outbox never overflowed");
    assert_eq!(before.overflow_kills, 0);
    let drops = broker.per_connection_drops();
    let nonzero: Vec<_> = drops.iter().filter(|(_, d)| *d > 0).collect();
    assert_eq!(nonzero.len(), 1, "drops must be attributed to one conn");
    assert_eq!(nonzero[0].1, before.dropped_frames);

    // Conservation across shutdown: 1 subscribe ack + one push per
    // publish + one publisher reply per publish were created; each is
    // either flushed or dropped — nothing vanishes, nothing is counted
    // twice.
    let drain = broker.shutdown();
    let flushed_total = before.flush.frames + drain.frames_flushed;
    let dropped_total = before.dropped_frames + drain.frames_dropped;
    assert_eq!(
        flushed_total + dropped_total,
        1 + 2 * PUBLISHES,
        "frames leaked or were double-counted (flushed {flushed_total}, dropped {dropped_total})"
    );
}

/// Under `Kill`, the overflowing subscriber is disconnected — exactly
/// once, and only it — and surviving connections report zero drops.
#[test]
fn kill_policy_reports_exactly_one_overflow_kill() {
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            outbox_limit_bytes: 64 * 1024,
            overflow_policy: OverflowPolicy::Kill,
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();

    let mut slow = RespClient::connect(addr);
    slow.send(&["SUBSCRIBE", "hose"]);
    assert_eq!(slow.recv(), resp::subscription_push("subscribe", "hose", 1));

    let payload = "z".repeat(16 * 1024);
    let mut publisher = RespClient::connect(addr);
    let mut killed = false;
    for _ in 0..4_000 {
        publisher.send(&["PUBLISH", "hose", &payload]);
        match publisher.recv() {
            Value::Integer(0) => {
                killed = true;
                break;
            }
            Value::Integer(1) => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(killed, "overflow never killed the slow subscriber");

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let health = broker.health();
        if health.open_connections == 1 && health.subscriptions == 0 {
            assert_eq!(health.overflow_kills, 1);
            assert_eq!(health.connections_live, 1);
            break;
        }
        assert!(Instant::now() < deadline, "kill teardown never completed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The survivor (the publisher) shed nothing.
    for (_, drops) in broker.per_connection_drops() {
        assert_eq!(drops, 0);
    }
    broker.shutdown();
}

/// Shutdown honors `shutdown_drain_timeout`: a subscriber that stopped
/// reading cannot stall the broker, and its undeliverable frames are
/// reported dropped in the [`dynamoth_pubsub::ShutdownStats`].
#[test]
fn shutdown_drain_is_bounded_and_accounted() {
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            outbox_limit_bytes: 8 * 1024 * 1024,
            shutdown_drain_timeout: Duration::from_millis(250),
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();

    let mut slow = RespClient::connect(addr);
    slow.send(&["SUBSCRIBE", "wall"]);
    assert_eq!(slow.recv(), resp::subscription_push("subscribe", "wall", 1));

    // Enough queued bytes to overrun any socket buffer, well under the
    // outbox budget — the frames sit in the outbox at shutdown time.
    let payload = "w".repeat(64 * 1024);
    let mut publisher = RespClient::connect(addr);
    for _ in 0..128 {
        publisher.send(&["PUBLISH", "wall", &payload]);
        assert_eq!(publisher.recv(), Value::Integer(1));
    }

    let start = Instant::now();
    let stats = broker.shutdown();
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "drain was not bounded: {elapsed:?}"
    );
    assert!(
        stats.frames_dropped > 0,
        "a non-reading subscriber must leave dropped frames"
    );
}

/// With a liveness timeout configured, a half-open connection (peer
/// silent, no FIN ever arriving) is reaped by the timer wheel within
/// the deadline, while a connection that keeps PINGing survives.
#[test]
fn liveness_timeout_reaps_silent_connections_only() {
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            liveness_timeout: Some(Duration::from_millis(400)),
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    let addr = broker.local_addr();

    let mut silent = RespClient::connect(addr);
    silent.send(&["SUBSCRIBE", "quiet"]);
    assert_eq!(
        silent.recv(),
        resp::subscription_push("subscribe", "quiet", 1)
    );
    // `silent` now never writes again — a half-open peer as far as the
    // broker can tell (we just never send the FIN either).

    let mut pinger = RespClient::connect(addr);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        pinger.send(&["PING"]);
        assert_eq!(
            pinger.recv(),
            Value::Simple("PONG".into()),
            "live connection was reaped"
        );
        let health = broker.health();
        if health.liveness_kills == 1 {
            assert_eq!(health.subscriptions, 0, "silent subscription not swept");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "silent connection was never reaped"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    // The broker actually closed the silent socket.
    let saw_close = silent.try_recv(Duration::from_secs(2)).is_none();
    assert!(saw_close);
    broker.shutdown();
}

/// The per-loop breakdowns sum to the aggregate counters, connections
/// are spread across loops, and the peak gauge tracks the high-water
/// mark.
#[test]
fn per_loop_stats_sum_to_aggregate() {
    const CLIENTS: usize = 8;
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            io_loops: 4,
            ..BrokerConfig::default()
        },
    )
    .expect("bind");
    assert_eq!(broker.io_loops(), 4);
    let addr = broker.local_addr();

    let mut subs: Vec<RespClient> = Vec::new();
    for i in 0..CLIENTS {
        let mut c = RespClient::connect(addr);
        let ch = format!("ch-{i}");
        c.send(&["SUBSCRIBE", &ch]);
        assert_eq!(c.recv(), resp::subscription_push("subscribe", &ch, 1));
        subs.push(c);
    }
    let mut publisher = RespClient::connect(addr);
    for i in 0..CLIENTS {
        publisher.send(&["PUBLISH", &format!("ch-{i}"), "hello"]);
        assert_eq!(publisher.recv(), Value::Integer(1));
    }
    for (i, c) in subs.iter_mut().enumerate() {
        let push = c.recv();
        assert_eq!(push, resp::message_push(&format!("ch-{i}"), b"hello"));
    }

    let health = broker.health();
    let per_loop = broker.per_loop_flush_stats();
    assert_eq!(per_loop.len(), 4);
    let agg = broker.flush_stats();
    assert_eq!(per_loop.iter().map(|l| l.frames).sum::<u64>(), agg.frames);
    assert_eq!(per_loop.iter().map(|l| l.writes).sum::<u64>(), agg.writes);
    assert!(per_loop.iter().map(|l| l.bytes).sum::<u64>() > 0);
    assert_eq!(
        per_loop.iter().map(|l| l.connections).sum::<usize>(),
        health.open_connections
    );
    assert_eq!(health.open_connections, CLIENTS + 1);
    assert_eq!(health.connections_live, CLIENTS + 1);
    assert!(health.peak_connections >= CLIENTS + 1);
    // Least-loaded placement: 9 connections over 4 loops can't all pile
    // onto one loop.
    assert!(per_loop.iter().filter(|l| l.connections > 0).count() >= 3);
    broker.shutdown();
}
